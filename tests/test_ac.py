"""AC (phasor) MNA solver tests, including cross-validation against
the analytic ladder impedance model and strict parity between the
compiled sweep engine and the scalar solve_ac oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError, SolverError
from repro.pdn.ac import (
    ACNetlist,
    ACSweep,
    CompiledACNetlist,
    impedance_at,
    probe_netlist,
    solve_ac,
)
from repro.pdn.impedance import pdn_impedance, pdn_impedance_mna
from repro.pdn.transient import PDNStage


class TestElements:
    def test_inductor_validation(self):
        net = ACNetlist()
        with pytest.raises(ConfigError):
            net.add_inductor("l", "a", "a", 1e-9)
        with pytest.raises(ConfigError):
            net.add_inductor("l2", "a", "b", 0.0)

    def test_capacitor_validation(self):
        net = ACNetlist()
        with pytest.raises(ConfigError):
            net.add_capacitor("c", "a", "b", 0.0)

    def test_reactive_nodes_discovered(self):
        net = ACNetlist()
        net.add_inductor("l", "a", "b", 1e-9)
        net.add_capacitor("c", "b", net.GROUND, 1e-6)
        assert set(net.nodes()) == {"a", "b"}

    def test_extend_ac(self):
        first = ACNetlist()
        first.add_resistor("r", "a", "0", 1.0)
        second = ACNetlist()
        second.add_inductor("l", "a", "b", 1e-9)
        first.extend_ac(second)
        assert len(first.inductors) == 1


class TestAnalyticCircuits:
    def test_rc_divider_cutoff(self):
        """R-C low-pass: |V_out/V_in| = 1/sqrt(2) at f = 1/(2 pi R C)."""
        r, c = 1e3, 1e-9
        f_c = 1.0 / (2 * math.pi * r * c)
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", r)
        net.add_capacitor("c", "out", net.GROUND, c)
        solution = solve_ac(net, f_c)
        assert solution.magnitude("out") == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )

    def test_rl_divider_cutoff(self):
        """R-L high-pass: |V_L/V_in| = 1/sqrt(2) at f = R/(2 pi L)."""
        r, l = 10.0, 1e-6
        f_c = r / (2 * math.pi * l)
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", r)
        net.add_inductor("l", "out", net.GROUND, l)
        solution = solve_ac(net, f_c)
        assert solution.magnitude("out") == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )

    def test_series_lc_resonance_short(self):
        """A series L-C branch is a near-short at resonance."""
        l, c = 1e-9, 1e-6
        f_0 = 1.0 / (2 * math.pi * math.sqrt(l * c))
        net = ACNetlist()
        net.add_resistor("damp", "in", net.GROUND, 1e6)
        net.add_inductor("l", "in", "mid", l)
        net.add_capacitor("c", "mid", net.GROUND, c)
        net.add_current_source("i", net.GROUND, "in", 1.0)
        z_at_res = solve_ac(net, f_0).magnitude("in")
        z_off_res = solve_ac(net, f_0 * 10).magnitude("in")
        assert z_at_res < z_off_res / 10

    def test_pure_resistive_matches_dc(self):
        net = ACNetlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", "mid", 1.0)
        net.add_resistor("r2", "mid", net.GROUND, 1.0)
        solution = solve_ac(net, 1e6)
        assert solution.magnitude("mid") == pytest.approx(5.0)

    def test_rejects_zero_frequency(self):
        net = ACNetlist()
        net.add_resistor("r", "a", "0", 1.0)
        with pytest.raises(ConfigError):
            solve_ac(net, 0.0)


class TestImpedanceProbe:
    def build_single_stage(self) -> ACNetlist:
        """One PDN stage as an explicit netlist: V source -> R, L ->
        die node with decap (C + ESR)."""
        net = ACNetlist()
        net.add_voltage_source("vrm", "src", 1.0)
        net.add_resistor("r_series", "src", "mid", 0.05e-3)
        net.add_inductor("l_series", "mid", "die", 1e-9)
        net.add_capacitor("c_decap", "die", "cap_tap", 1e-6)
        net.add_resistor("esr", "cap_tap", net.GROUND, 0.3e-3)
        return net

    def test_cross_validation_against_ladder_analytic(self):
        """The generic AC solve must match the analytic ladder model
        across the band."""
        stage = PDNStage("s", 0.05e-3, 1e-9, 1e-6, 0.3e-3)
        freqs = np.logspace(4, 9, 40)
        analytic = pdn_impedance(
            [stage], frequencies_hz=freqs, source_impedance_ohm=1e-9
        ).impedance_ohm

        net = self.build_single_stage()
        numeric = impedance_at(net, "die", freqs)
        assert np.allclose(numeric, analytic, rtol=1e-3)

    def test_probe_does_not_mutate(self):
        net = self.build_single_stage()
        before = net.element_count
        impedance_at(net, "die", np.array([1e6]))
        assert net.element_count == before

    def test_impedance_positive(self):
        net = self.build_single_stage()
        values = impedance_at(net, "die", np.logspace(4, 8, 10))
        assert np.all(values > 0)

    def test_rejects_bad_frequencies(self):
        net = self.build_single_stage()
        with pytest.raises(ConfigError):
            impedance_at(net, "die", np.array([]))
        with pytest.raises(ConfigError):
            impedance_at(net, "die", np.array([-1.0]))

    def test_sweep_parity_with_scalar_oracle(self):
        """The acceptance bound: the compiled sweep must match the
        scalar solve_ac oracle to 1e-9 relative on every node phasor
        across a dense log grid of the flagship probe circuit."""
        probe = probe_netlist(self.build_single_stage(), "die")
        freqs = np.logspace(3, 9, 200)
        sweep = ACSweep(probe).solve(freqs)
        for k, frequency in enumerate(freqs):
            reference = solve_ac(probe, float(frequency))
            scale = max(
                abs(reference.voltage(node)) for node in sweep.nodes
            )
            for node in sweep.nodes:
                delta = abs(sweep.voltage(node)[k] - reference.voltage(node))
                assert delta <= 1e-9 * scale

    def test_impedance_matches_scalar_probe_loop(self):
        """impedance_at (compiled path) == scalar per-frequency loop."""
        net = self.build_single_stage()
        freqs = np.logspace(4, 9, 120)
        fast = impedance_at(net, "die", freqs)
        probe = probe_netlist(net, "die")
        scalar = np.array(
            [solve_ac(probe, float(f)).magnitude("die") for f in freqs]
        )
        assert np.all(np.abs(fast - scalar) <= 1e-9 * scalar.max())

    def test_bulk_decap_suppresses_the_peak(self):
        """A branched bulk decap (which the ladder analytic cannot
        express) must suppress the single-stage anti-resonance peak.
        Note it may *raise* |Z| slightly off-peak — the well-known
        anti-resonance interaction — so only the peak is asserted."""
        freqs = np.logspace(5, 7.5, 60)
        single = self.build_single_stage()
        z_single = impedance_at(single, "die", freqs)
        peak_index = int(np.argmax(z_single))

        branched = self.build_single_stage()
        branched.add_capacitor("c_bulk", "die", "bulk_tap", 100e-6)
        branched.add_resistor("esr_bulk", "bulk_tap", branched.GROUND, 1e-3)
        z_branched = impedance_at(branched, "die", freqs)
        assert z_branched[peak_index] < z_single[peak_index]
        assert z_branched.max() < z_single.max()


class TestCompiledACNetlist:
    def build(self) -> ACNetlist:
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", 1e3)
        net.add_capacitor("c", "out", net.GROUND, 1e-9)
        net.add_inductor("l", "out", "tail", 1e-6)
        net.add_resistor("rt", "tail", net.GROUND, 10.0)
        net.add_current_source("i", net.GROUND, "out", 0.5)
        return net

    def test_matrix_matches_scalar_stamps(self):
        """matrix_at reproduces the scalar path's assembled matrix."""
        net = self.build()
        compiled = net.compile_ac()
        frequency = 2.7e6
        fast = compiled.matrix_at(frequency).toarray()

        # Rebuild via the scalar oracle's internals: solve and compare
        # A @ x == rhs with the scalar solution.
        reference = solve_ac(net, frequency)
        x = np.array(
            [reference.voltage(node) for node in compiled.nodes]
            + [0.0] * (compiled.size - compiled.n_nodes),
            dtype=complex,
        )
        # Recover the source branch currents from the node equations.
        residual = compiled.rhs - fast @ x
        x[compiled.n_nodes :] = np.linalg.lstsq(
            fast[:, compiled.n_nodes :], residual, rcond=None
        )[0]
        assert np.allclose(fast @ x, compiled.rhs, atol=1e-9)

    def test_values_at_splits_kinds(self):
        """Resistive entries are frequency flat; reactive ones scale."""
        compiled = self.build().compile_ac()
        low = compiled.values_at(1e3)
        high = compiled.values_at(1e9)
        assert np.allclose(low.real, high.real)
        assert not np.allclose(low.imag, high.imag)

    def test_sweep_rejects_bad_frequencies(self):
        compiled = self.build().compile_ac()
        with pytest.raises(ConfigError):
            compiled.solve(np.array([]))
        with pytest.raises(ConfigError):
            compiled.solve(np.array([0.0]))
        with pytest.raises(ConfigError):
            compiled.solve(np.array([[1e6]]))

    def test_sweep_snapshot_ignores_later_mutation(self):
        net = self.build()
        engine = ACSweep(net)
        before = engine.solve(np.array([1e6])).voltage("out")[0]
        net.add_resistor("shunt", "out", net.GROUND, 1e-3)
        after = engine.solve(np.array([1e6])).voltage("out")[0]
        assert before == after

    def test_sweep_solution_ground_and_unknown_nodes(self):
        sweep = ACSweep(self.build()).solve(np.array([1e5, 1e6]))
        assert np.all(sweep.voltage("0") == 0.0)
        assert np.all(sweep.magnitude("out") > 0.0)
        with pytest.raises(ConfigError):
            sweep.voltage("nope")

    def test_sparse_and_dense_paths_agree(self, monkeypatch):
        """Forcing the sparse per-frequency path must not change
        results (the dense batch is an implementation detail)."""
        import repro.pdn.ac as ac_module

        net = self.build()
        freqs = np.logspace(3, 9, 25)
        dense = ACSweep(net).solve(freqs)
        monkeypatch.setattr(ac_module, "DENSE_SWEEP_CUTOFF", 0)
        sparse = ACSweep(net).solve(freqs)
        assert np.allclose(
            dense.voltage_matrix, sparse.voltage_matrix, rtol=1e-9
        )

    def test_floating_subcircuit_raises(self):
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", net.GROUND, 1.0)
        # Floating island driven by nothing, referenced by nothing.
        net.add_capacitor("c_f", "island_a", "island_b", 1e-9)
        net.add_current_source("i_f", "island_a", "island_b", 1.0)
        with pytest.raises(SolverError):
            ACSweep(net).solve(np.array([1e6]))


class TestLadderCrossValidation:
    STAGES = [
        PDNStage("board", 0.2e-3, 10e-9, 2e-3, 0.2e-3),
        PDNStage("package", 0.1e-3, 0.5e-9, 200e-6, 0.3e-3),
        PDNStage("die", 0.05e-3, 20e-12, 2e-6, 0.05e-3),
    ]

    def test_mna_path_matches_analytic(self):
        freqs = np.logspace(3, 9, 121)
        analytic = pdn_impedance(self.STAGES, freqs).impedance_ohm
        numeric = pdn_impedance_mna(self.STAGES, freqs).impedance_ohm
        assert np.all(
            np.abs(numeric - analytic) <= 1e-9 * analytic.max()
        )

    def test_zero_esr_and_zero_source_impedance(self):
        stages = [PDNStage("s", 1e-3, 1e-9, 1e-6, 0.0)]
        freqs = np.logspace(4, 8, 40)
        analytic = pdn_impedance(
            stages, freqs, source_impedance_ohm=0.0
        ).impedance_ohm
        numeric = pdn_impedance_mna(
            stages, freqs, source_impedance_ohm=0.0
        ).impedance_ohm
        assert np.all(
            np.abs(numeric - analytic) <= 1e-9 * analytic.max()
        )

    def test_default_frequency_grid(self):
        profile = pdn_impedance_mna(self.STAGES)
        assert len(profile.frequencies_hz) == 361
        assert profile.peak_impedance_ohm > 0
