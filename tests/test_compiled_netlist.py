"""Unit tests for the compiled netlist and cached-factorization API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SolverError
from repro.pdn.grid import GridPDN
from repro.pdn.mna import FactorizedPDN, solve_dc
from repro.pdn.network import GROUND_INDEX, CompiledNetlist, Netlist
from repro.pdn.powermap import PowerMap


def feed_netlist() -> Netlist:
    net = Netlist()
    net.add_voltage_source("v", "in", 1.0)
    net.add_resistor("feed", "in", "pol", 1e-3)
    net.add_load("cpu", "pol", 100.0)
    return net


class TestCompile:
    def test_roundtrip_counts(self):
        compiled = feed_netlist().compile()
        assert compiled.n_nodes == 2
        assert compiled.n_vsources == 1
        assert compiled.size == 3
        assert compiled.element_count == 3

    def test_ground_encoded_as_sentinel(self):
        compiled = feed_netlist().compile()
        assert compiled.cs_to[0] == GROUND_INDEX
        assert compiled.vs_minus[0] == GROUND_INDEX

    def test_names_preserved(self):
        compiled = feed_netlist().compile()
        assert compiled.res_names == ("feed",)
        assert compiled.cs_names == ("cpu",)
        assert compiled.vs_names == ("v",)

    def test_node_index_maps_ground(self):
        compiled = feed_netlist().compile()
        assert compiled.node_index["0"] == GROUND_INDEX
        assert set(compiled.node_index) == {"in", "pol", "0"}

    def test_compile_is_snapshot(self):
        net = feed_netlist()
        compiled = net.compile()
        net.add_load("late", "pol", 5.0)
        assert len(compiled.cs_amp) == 1

    def test_total_load_current(self):
        compiled = feed_netlist().compile()
        assert compiled.total_load_current_a() == pytest.approx(100.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigError):
            CompiledNetlist(
                nodes=("a",),
                res_a=np.array([0]),
                res_b=np.array([GROUND_INDEX]),
                res_ohm=np.array([0.0]),
            )

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ConfigError):
            CompiledNetlist(
                nodes=("a",),
                res_a=np.array([5]),
                res_b=np.array([GROUND_INDEX]),
                res_ohm=np.array([1.0]),
            )

    def test_lazy_default_names(self):
        compiled = CompiledNetlist(
            nodes=("a",),
            res_a=np.array([0]),
            res_b=np.array([GROUND_INDEX]),
            res_ohm=np.array([1.0]),
            vs_plus=np.array([0]),
            vs_minus=np.array([GROUND_INDEX]),
            vs_volt=np.array([1.0]),
        )
        assert compiled.res_names == ("R[0]",)
        assert compiled.vs_names == ("V[0]",)

    def test_wrong_length_names_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            CompiledNetlist(
                nodes=("a", "b"),
                res_a=np.array([0, 1]),
                res_b=np.array([GROUND_INDEX, GROUND_INDEX]),
                res_ohm=np.array([1.0, 2.0]),
                vs_plus=np.array([0]),
                vs_minus=np.array([GROUND_INDEX]),
                vs_volt=np.array([1.0]),
                res_names=("only-one",),
            )

    def test_wrong_length_callable_names_rejected_on_resolution(self):
        compiled = CompiledNetlist(
            nodes=("a",),
            res_a=np.array([0]),
            res_b=np.array([GROUND_INDEX]),
            res_ohm=np.array([1.0]),
            vs_plus=np.array([0]),
            vs_minus=np.array([GROUND_INDEX]),
            vs_volt=np.array([1.0]),
            res_names=lambda: ["a", "b"],
        )
        with pytest.raises(ConfigError):
            compiled.res_names

    def test_callable_names_resolved_once(self):
        calls = {"n": 0}

        def names():
            calls["n"] += 1
            return ["only"]

        compiled = CompiledNetlist(
            nodes=("a",),
            res_a=np.array([0]),
            res_b=np.array([GROUND_INDEX]),
            res_ohm=np.array([1.0]),
            vs_plus=np.array([0]),
            vs_minus=np.array([GROUND_INDEX]),
            vs_volt=np.array([1.0]),
            res_names=names,
        )
        assert compiled.res_names == ("only",)
        assert compiled.res_names == ("only",)
        assert calls["n"] == 1


class TestWithSources:
    def test_shares_structure(self):
        compiled = feed_netlist().compile()
        scaled = compiled.with_sources(cs_amp=np.array([50.0]))
        assert scaled.res_ohm is compiled.res_ohm
        assert scaled.cs_amp[0] == 50.0
        assert compiled.cs_amp[0] == 100.0

    def test_shape_checked(self):
        compiled = feed_netlist().compile()
        with pytest.raises(ConfigError):
            compiled.with_sources(cs_amp=np.array([1.0, 2.0]))
        with pytest.raises(ConfigError):
            compiled.with_sources(vs_volt=np.array([1.0, 2.0]))


class TestFactorizedPDN:
    def test_solve_matches_solve_dc(self):
        net = feed_netlist()
        solver = FactorizedPDN(net)
        direct = solve_dc(net)
        reused = solver.solve()
        assert reused.voltage("pol") == pytest.approx(direct.voltage("pol"))

    def test_rhs_override_scales_linearly(self):
        solver = FactorizedPDN(feed_netlist())
        half = solver.solve(cs_amp=np.array([50.0]))
        full = solver.solve()
        assert 1.0 - half.voltage("pol") == pytest.approx(
            (1.0 - full.voltage("pol")) / 2.0
        )

    def test_voltage_override(self):
        solver = FactorizedPDN(feed_netlist())
        boosted = solver.solve(vs_volt=np.array([2.0]))
        assert boosted.voltage("pol") == pytest.approx(1.9)

    def test_solve_many_columns_match_individual_solves(self):
        solver = FactorizedPDN(feed_netlist())
        base = solver.rhs()
        stacked = np.column_stack([base, 2.0 * base, 0.5 * base])
        batch = solver.solve_many(stacked)
        for column, scale in zip(batch.T, (1.0, 2.0, 0.5)):
            single = solver.solve_rhs(base * scale)
            assert np.allclose(column, single, rtol=1e-12, atol=1e-12)

    def test_solve_many_rejects_wrong_shape(self):
        solver = FactorizedPDN(feed_netlist())
        with pytest.raises(SolverError):
            solver.solve_many(np.zeros((2, 4)))

    def test_singular_topology_raises_at_factorization(self):
        net = Netlist()
        net.add_voltage_source("v", "a", 1.0)
        net.add_resistor("r", "a", net.GROUND, 1.0)
        net.add_resistor("island", "f1", "f2", 1.0)
        net.add_current_source("i", "f1", "f2", 1.0)
        with pytest.raises(SolverError):
            FactorizedPDN(net)


class TestDCSolutionViews:
    def test_dict_views_match_arrays(self):
        solution = solve_dc(feed_netlist())
        compiled = solution.compiled
        for i, name in enumerate(compiled.res_names):
            assert solution.resistor_currents[name] == (
                solution.resistor_current_array[i]
            )
            assert solution.resistor_losses[name] == (
                solution.resistor_loss_array[i]
            )
        for i, node in enumerate(compiled.nodes):
            assert solution.node_voltages[node] == (
                solution.node_voltage_array[i]
            )
        for i, name in enumerate(compiled.vs_names):
            assert solution.source_currents[name] == (
                solution.source_current_array[i]
            )

    def test_loss_by_prefix_matches_dict_sum(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("pcb.r1", "in", "m", 1e-3)
        net.add_resistor("pkg.r1", "m", net.GROUND, 1e-3)
        solution = solve_dc(net)
        assert solution.loss_by_prefix("pcb.") == pytest.approx(
            solution.resistor_losses["pcb.r1"]
        )


def hotspot_grid(n: int = 12) -> GridPDN:
    grid = GridPDN(0.02, 0.02, 1e-3, nx=n, ny=n)
    grid.set_sinks(PowerMap.hotspot_mixture(), 100.0)
    grid.add_source("a", 0.0, 0.5, 1.0, 1e-3)
    grid.add_source("b", 1.0, 0.5, 1.0, 1e-3)
    return grid


class TestGridFactorizationCache:
    def test_sink_change_reuses_factorization(self):
        grid = hotspot_grid()
        grid.solve()
        structure = grid._structure
        grid.set_sinks(PowerMap.uniform(), 50.0)
        grid.solve()
        assert grid._structure is structure

    def test_voltage_change_reuses_factorization(self):
        grid = hotspot_grid()
        grid.solve()
        structure = grid._structure
        grid.clear_sources()
        grid.add_source("a", 0.0, 0.5, 0.95, 1e-3)
        grid.add_source("b", 1.0, 0.5, 0.95, 1e-3)
        grid.solve()
        assert grid._structure is structure

    def test_source_move_refactorizes(self):
        grid = hotspot_grid()
        grid.solve()
        structure = grid._structure
        grid.clear_sources()
        grid.add_source("a", 0.5, 0.5, 1.0, 1e-3)
        grid.add_source("b", 1.0, 0.5, 1.0, 1e-3)
        grid.solve()
        assert grid._structure is not structure

    def test_cached_solution_matches_fresh_grid(self):
        """A sink change solved through the cache equals a cold solve."""
        grid = hotspot_grid()
        grid.solve()  # prime with the hotspot map
        grid.set_sinks(PowerMap.uniform(), 73.0)
        warm = grid.solve()

        cold = GridPDN(0.02, 0.02, 1e-3, nx=12, ny=12)
        cold.set_sinks(PowerMap.uniform(), 73.0)
        cold.add_source("a", 0.0, 0.5, 1.0, 1e-3)
        cold.add_source("b", 1.0, 0.5, 1.0, 1e-3)
        fresh = cold.solve()
        assert warm.lateral_loss_w == pytest.approx(
            fresh.lateral_loss_w, rel=1e-12
        )
        assert np.allclose(warm.voltage_map, fresh.voltage_map)

    def test_fast_path_matches_netlist_path(self):
        """The compiled mesh agrees with build_netlist + solve_dc."""
        grid = hotspot_grid()
        fast = grid.solve()
        slow = solve_dc(grid.build_netlist())
        assert fast.lateral_loss_w == pytest.approx(
            (
                slow.loss_by_prefix("grid.") + slow.loss_by_prefix("ring[")
            ) * grid.rail_pair_factor,
            rel=1e-9,
        )
        for iy in range(grid.ny):
            for ix in range(grid.nx):
                assert fast.voltage_map[iy, ix] == pytest.approx(
                    slow.node_voltages[("g", ix, iy)], rel=1e-9, abs=1e-12
                )

    def test_edge_current_stats_match_name_filtered_dict(self):
        solution = hotspot_grid().solve()
        stats = solution.edge_current_stats()
        by_name = np.abs(
            np.array(
                [
                    current
                    for name, current in solution.dc.resistor_currents.items()
                    if name.startswith("grid.")
                ]
            )
        )
        assert stats["max_a"] == pytest.approx(by_name.max(), rel=1e-12)
        assert stats["mean_a"] == pytest.approx(by_name.mean(), rel=1e-12)

    def test_grid_compile_exposes_sinks_and_voltages(self):
        grid = hotspot_grid()
        compiled = grid.compile()
        assert compiled.total_load_current_a() == pytest.approx(100.0)
        assert np.all(compiled.vs_volt == 1.0)

    def test_duplicate_source_name_rejected_at_attachment(self):
        grid = GridPDN(0.02, 0.02, 1e-3, nx=8, ny=8)
        grid.add_source("a", 0.0, 0.0, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            grid.add_source("a", 1.0, 1.0, 1.0, 1e-3)

    def test_compile_does_not_factorize(self):
        """grid.compile() hands out the array form without paying for
        (or later duplicating) an LU decomposition."""
        grid = hotspot_grid()
        grid.compile()
        assert grid._structure is not None
        assert grid._structure._solver is None
        grid.solve()
        assert grid._structure._solver is not None
