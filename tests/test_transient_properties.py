"""Property-based tests of the PDN load-step transient."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.transient import PDNStage, PDNTransient

steps = st.floats(min_value=1.0, max_value=100.0)
resistances = st.floats(min_value=1e-5, max_value=1e-3)
inductances = st.floats(min_value=1e-12, max_value=1e-8)
capacitances = st.floats(min_value=1e-7, max_value=1e-3)


def build_pdn(r1, l1, c1) -> PDNTransient:
    return PDNTransient(
        1.0,
        [
            PDNStage("board", r1, l1, c1, 0.1e-3),
            PDNStage("die", r1 / 2, l1 / 10, c1 / 100, 0.05e-3),
        ],
    )


@given(step=steps, r=resistances, l=inductances, c=capacitances)
@settings(max_examples=25, deadline=None)
def test_droop_nonnegative(step, r, l, c):
    pdn = build_pdn(r, l, c)
    result = pdn.simulate_step(0.0, step, duration_s=5e-6, dt_s=5e-9)
    assert result.droop_v >= 0.0


@given(step=steps, r=resistances, l=inductances, c=capacitances)
@settings(max_examples=25, deadline=None)
def test_droop_linear_in_step(step, r, l, c):
    """Linear network: doubling the step doubles the droop."""
    pdn = build_pdn(r, l, c)
    small = pdn.simulate_step(0.0, step, duration_s=5e-6, dt_s=5e-9)
    large = pdn.simulate_step(0.0, 2 * step, duration_s=5e-6, dt_s=5e-9)
    assert large.droop_v == pytest.approx(
        2 * small.droop_v, rel=1e-6, abs=1e-12
    )


@given(step=steps, r=resistances, l=inductances, c=capacitances)
@settings(max_examples=25, deadline=None)
def test_step_offset_invariance(step, r, l, c):
    """Only the step *delta* matters for the droop, not the baseline."""
    pdn = build_pdn(r, l, c)
    from_zero = pdn.simulate_step(0.0, step, duration_s=5e-6, dt_s=5e-9)
    offset = pdn.simulate_step(
        step / 2, 1.5 * step, duration_s=5e-6, dt_s=5e-9
    )
    assert offset.droop_v == pytest.approx(
        from_zero.droop_v, rel=1e-6, abs=1e-12
    )


@given(step=steps, r=resistances, l=inductances, c=capacitances)
@settings(max_examples=25, deadline=None)
def test_dc_state_consistent_with_resistive_drop(step, r, l, c):
    pdn = build_pdn(r, l, c)
    state = pdn.dc_state(step)
    total_r = r + r / 2
    # Final capacitor voltage = supply - I * total series resistance.
    assert state[-1] == pytest.approx(1.0 - step * total_r, rel=1e-6)
