"""Regression bands: pin the calibrated headline numbers.

These tests exist to make silent calibration drift loud.  If a model
change moves any of the reproduced quantities outside its band, the
change must either be fixed or EXPERIMENTS.md must be re-recorded
alongside updating these bands.
"""

from __future__ import annotations

import pytest

from repro import (
    DPMIH,
    DSCH,
    LossAnalyzer,
    analyze_current_sharing,
    a0_die_area_requirement,
    dual_stage_a3,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
    vertical_utilization,
)


@pytest.fixture(scope="module")
def analyzer():
    return LossAnalyzer()


class TestFig7Bands:
    """Loss percentages recorded in EXPERIMENTS.md (± 2 points abs)."""

    EXPECTED = {
        ("A0", None): 47.9,
        ("A1", DPMIH): 20.8,
        ("A1", DSCH): 17.7,
        ("A2", DPMIH): 16.0,
        ("A2", DSCH): 12.0,
    }

    @pytest.mark.parametrize(
        "arch_name,topology,expected",
        [(k[0], k[1], v) for k, v in EXPECTED.items()],
    )
    def test_loss_band(self, analyzer, arch_name, topology, expected):
        factories = {
            "A0": reference_a0,
            "A1": single_stage_a1,
            "A2": single_stage_a2,
        }
        breakdown = analyzer.analyze(
            factories[arch_name](), topology or DSCH
        )
        assert 100 * breakdown.paper_loss_fraction == pytest.approx(
            expected, abs=2.0
        )

    def test_a3_bands(self, analyzer):
        assert 100 * analyzer.analyze(
            dual_stage_a3(12.0), DSCH
        ).paper_loss_fraction == pytest.approx(24.4, abs=2.5)
        assert 100 * analyzer.analyze(
            dual_stage_a3(6.0), DSCH
        ).paper_loss_fraction == pytest.approx(27.8, abs=2.5)


class TestHorizontalReductionBands:
    def test_a3_12v_band(self, analyzer):
        a0 = analyzer.analyze(reference_a0(), DSCH)
        a3 = analyzer.analyze(dual_stage_a3(12.0), DSCH)
        assert a0.horizontal_loss_w / a3.horizontal_loss_w == pytest.approx(
            18.6, abs=2.5
        )

    def test_a3_6v_band(self, analyzer):
        a0 = analyzer.analyze(reference_a0(), DSCH)
        a3 = analyzer.analyze(dual_stage_a3(6.0), DSCH)
        assert a0.horizontal_loss_w / a3.horizontal_loss_w == pytest.approx(
            6.7, abs=1.2
        )


class TestUtilizationBands:
    def test_recorded_percentages(self):
        report = vertical_utilization(single_stage_a2())
        assert report.row("BGA").utilization == pytest.approx(0.0128, abs=0.003)
        assert report.row("C4 bump").utilization == pytest.approx(
            0.0217, abs=0.004
        )
        assert report.row("TSV").utilization == pytest.approx(0.103, abs=0.02)
        assert report.row("advanced Cu pad").utilization == pytest.approx(
            0.188, abs=0.01
        )

    def test_a0_die_band(self):
        report = a0_die_area_requirement()
        assert report.required_die_area_mm2 == pytest.approx(1200.0, abs=10.0)


class TestSharingBands:
    def test_a1_band(self):
        result = analyze_current_sharing(single_stage_a1(), DSCH)
        assert result.min_current_a == pytest.approx(16.4, abs=2.0)
        assert result.max_current_a == pytest.approx(25.3, abs=2.5)

    def test_a2_band(self):
        result = analyze_current_sharing(single_stage_a2(), DSCH)
        assert result.min_current_a == pytest.approx(9.3, abs=2.0)
        assert result.max_current_a == pytest.approx(91.7, abs=8.0)


class TestConverterCurveAnchors:
    """The fits must keep interpolating the published points exactly."""

    def test_dpmih_anchor(self):
        assert DPMIH.loss_model.efficiency(30.0) == pytest.approx(
            0.909, abs=1e-9
        )
        assert DPMIH.loss_model.efficiency(100.0) == pytest.approx(
            0.865, abs=1e-9
        )

    def test_dsch_anchor(self):
        assert DSCH.loss_model.efficiency(10.0) == pytest.approx(
            0.915, abs=1e-9
        )
