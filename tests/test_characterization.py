"""Characterization pipeline tests (the Fig. 7 study shape)."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.core.characterization import (
    characterize_all,
    fig7_claims,
)


@pytest.fixture(scope="module")
def rows():
    return characterize_all()


@pytest.fixture(scope="module")
def claims(rows):
    return fig7_claims(rows)


class TestStudyShape:
    def test_row_count(self, rows):
        # A0 once + 4 vertical architectures x 3 topologies.
        assert len(rows) == 1 + 4 * 3

    def test_a0_always_included(self, rows):
        a0 = [r for r in rows if r.architecture == "A0"]
        assert len(a0) == 1 and a0[0].included

    def test_3lhd_excluded_everywhere(self, rows):
        excluded = [r for r in rows if not r.included]
        assert excluded
        assert all(r.topology == "3LHD" for r in excluded)
        assert len(excluded) == 4

    def test_exclusion_reason_mentions_rating(self, rows):
        reason = next(r.excluded_reason for r in rows if not r.included)
        assert "12" in reason

    def test_dpmih_and_dsch_included_everywhere(self, rows):
        for topology in ("DPMIH", "DSCH"):
            included = [
                r
                for r in rows
                if r.topology == topology and r.included
            ]
            assert len(included) == 4


class TestPaperClaims:
    def test_a0_over_40pct(self, claims):
        assert claims.a0_loss_pct > 40.0

    def test_vertical_architectures_around_80pct_efficiency(self, claims):
        assert claims.best_vertical_loss_pct < 20.0
        assert claims.worst_vertical_loss_pct < 35.0

    def test_vertical_interconnect_negligible(self, claims):
        assert claims.vertical_loss_negligible

    def test_ppdn_and_converter_split(self, claims):
        assert claims.all_ppdn_below_10pct
        assert claims.all_converters_above_10pct

    def test_horizontal_reduction_factors(self, claims):
        assert claims.horizontal_reduction_a3_12v == pytest.approx(19, rel=0.3)
        assert claims.horizontal_reduction_a3_6v == pytest.approx(7, rel=0.3)

    def test_reduction_ordering(self, claims):
        assert (
            claims.horizontal_reduction_a3_12v
            > claims.horizontal_reduction_a3_6v
        )

    def test_excluded_list(self, claims):
        assert claims.excluded_topologies == ("3LHD",)


class TestOrderings:
    def test_a2_beats_a1_per_topology(self, rows):
        by_point = {
            (r.architecture, r.topology): r.breakdown
            for r in rows
            if r.included
        }
        for topology in ("DPMIH", "DSCH"):
            a1 = by_point[("A1", topology)]
            a2 = by_point[("A2", topology)]
            assert a2.total_loss_w < a1.total_loss_w

    def test_dsch_beats_dpmih_per_architecture(self, rows):
        by_point = {
            (r.architecture, r.topology): r.breakdown
            for r in rows
            if r.included
        }
        for arch in ("A1", "A2", "A3@12V", "A3@6V"):
            dsch = by_point[(arch, "DSCH")]
            dpmih = by_point[(arch, "DPMIH")]
            assert dsch.total_loss_w < dpmih.total_loss_w

    def test_a3_12v_beats_a3_6v(self, rows):
        by_point = {
            (r.architecture, r.topology): r.breakdown
            for r in rows
            if r.included
        }
        assert (
            by_point[("A3@12V", "DSCH")].total_loss_w
            < by_point[("A3@6V", "DSCH")].total_loss_w
        )

    def test_every_vertical_beats_a0(self, rows):
        a0 = next(r.breakdown for r in rows if r.architecture == "A0")
        for row in rows:
            if row.included and row.architecture != "A0":
                assert row.breakdown.total_loss_w < a0.total_loss_w


class TestCustomStudies:
    def test_smaller_system_keeps_3lhd(self):
        # At 400 W the 48-slot 3LHD bank (576 A capacity) suffices.
        rows = characterize_all(spec=SystemSpec().with_power(400.0))
        excluded = [r for r in rows if not r.included]
        assert not excluded

    def test_fig7_claims_requires_a0(self):
        rows = characterize_all()
        vertical_only = [r for r in rows if r.architecture != "A0"]
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            fig7_claims(vertical_only)
