"""Horizontal plane / spreading resistance model tests."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.materials import COPPER
from repro.pdn.planes import (
    annular_spreading_resistance,
    disk_edge_feed_resistance,
    distributed_cell_feed_resistance,
    equivalent_radius,
    equivalent_square_side,
    plane_resistance,
    rail_pair,
    sheet_resistance,
)


class TestSheetResistance:
    def test_basic_formula(self):
        # rho / t for 70 um copper.
        assert sheet_resistance(70e-6) == pytest.approx(1.68e-8 / 70e-6)

    def test_parallel_layers(self):
        single = sheet_resistance(35e-6)
        double = sheet_resistance(35e-6, layers_in_parallel=2)
        assert double == pytest.approx(single / 2)

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigError):
            sheet_resistance(35e-6, layers_in_parallel=0)

    def test_material_dependence(self):
        assert sheet_resistance(10e-6, COPPER) == pytest.approx(1.68e-3)


class TestPlaneResistance:
    def test_one_square(self):
        assert plane_resistance(1e-3, 0.03, 0.03) == pytest.approx(1e-3)

    def test_aspect_ratio(self):
        assert plane_resistance(1e-3, 0.06, 0.03) == pytest.approx(2e-3)

    def test_zero_length(self):
        assert plane_resistance(1e-3, 0.0, 0.03) == 0.0

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            plane_resistance(1e-3, 0.03, 0.0)

    def test_rejects_zero_sheet(self):
        with pytest.raises(ConfigError):
            plane_resistance(0.0, 0.03, 0.03)


class TestAnnularSpreading:
    def test_formula(self):
        r = annular_spreading_resistance(1e-3, 0.01, 0.02)
        assert r == pytest.approx(1e-3 * math.log(2) / (2 * math.pi))

    def test_equal_radii_zero(self):
        assert annular_spreading_resistance(1e-3, 0.01, 0.01) == 0.0

    def test_monotonic_in_outer_radius(self):
        r1 = annular_spreading_resistance(1e-3, 0.01, 0.02)
        r2 = annular_spreading_resistance(1e-3, 0.01, 0.04)
        assert r2 > r1

    def test_rejects_inverted_radii(self):
        with pytest.raises(ConfigError):
            annular_spreading_resistance(1e-3, 0.02, 0.01)

    def test_rejects_zero_radius(self):
        with pytest.raises(ConfigError):
            annular_spreading_resistance(1e-3, 0.0, 0.01)


class TestDiskEdgeFeed:
    def test_classic_result(self):
        # R_eff = R_sq / (8 pi)
        assert disk_edge_feed_resistance(1.0) == pytest.approx(
            1.0 / (8 * math.pi)
        )

    def test_linear_in_sheet(self):
        assert disk_edge_feed_resistance(2e-3) == pytest.approx(
            2 * disk_edge_feed_resistance(1e-3)
        )

    def test_rdl_scale(self):
        # 27 um Cu RDL -> ~0.62 mOhm/sq -> ~25 uOhm effective.
        sheet = sheet_resistance(27e-6)
        assert disk_edge_feed_resistance(sheet) == pytest.approx(
            24.8e-6, rel=0.02
        )

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            disk_edge_feed_resistance(0.0)


class TestDistributedCellFeed:
    def test_one_cell_equals_disk(self):
        assert distributed_cell_feed_resistance(1e-3, 1) == pytest.approx(
            disk_edge_feed_resistance(1e-3)
        )

    def test_scales_inverse_with_cells(self):
        r1 = distributed_cell_feed_resistance(1e-3, 1)
        r48 = distributed_cell_feed_resistance(1e-3, 48)
        assert r48 == pytest.approx(r1 / 48)

    def test_rejects_zero_cells(self):
        with pytest.raises(ConfigError):
            distributed_cell_feed_resistance(1e-3, 0)


class TestHelpers:
    def test_rail_pair(self):
        assert rail_pair(3e-6) == pytest.approx(6e-6)

    def test_rail_pair_rejects_negative(self):
        with pytest.raises(ConfigError):
            rail_pair(-1.0)

    def test_equivalent_square_side(self):
        assert equivalent_square_side(500e-6) == pytest.approx(
            math.sqrt(500e-6)
        )

    def test_equivalent_radius(self):
        area = 500e-6
        radius = equivalent_radius(area)
        assert math.pi * radius**2 == pytest.approx(area)

    def test_equivalent_radius_rejects_zero(self):
        with pytest.raises(ConfigError):
            equivalent_radius(0.0)
