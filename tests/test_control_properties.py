"""Property-based tests of droop load sharing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converters.control import droop_sharing

setpoints = st.lists(
    st.floats(min_value=0.95, max_value=1.05),
    min_size=2,
    max_size=24,
)
droop_values = st.floats(min_value=1e-4, max_value=1e-2)
loads = st.floats(min_value=0.0, max_value=1000.0)


@given(refs=setpoints, droop=droop_values, load=loads)
@settings(max_examples=100, deadline=None)
def test_currents_always_sum_to_load(refs, droop, load):
    currents, _ = droop_sharing(refs, [droop] * len(refs), load)
    assert currents.sum() == pytest.approx(load, abs=1e-6 * max(load, 1.0))


@given(refs=setpoints, droop=droop_values, load=loads)
@settings(max_examples=100, deadline=None)
def test_bus_voltage_between_extremes(refs, droop, load):
    currents, v_bus = droop_sharing(refs, [droop] * len(refs), load)
    # With any positive load the bus sits below the max setpoint.
    assert v_bus <= max(refs) + 1e-12
    # The bus can never sit below min(refs) - droop * load.
    assert v_bus >= min(refs) - droop * load - 1e-12


@given(refs=setpoints, droop=droop_values, load=loads)
@settings(max_examples=100, deadline=None)
def test_ordering_follows_setpoints(refs, droop, load):
    """Equal droops: current ordering mirrors setpoint ordering.

    Near-tied setpoints (within float round-off of each other) have no
    defined winner — ``ref_i - v_bus`` can round to identical currents
    — so the ordering is asserted with a round-off allowance instead
    of comparing argsort permutations.
    """
    currents, _ = droop_sharing(refs, [droop] * len(refs), load)
    order = np.argsort(refs, kind="stable")
    sorted_currents = currents[order]
    slack = 1e-12 * max(1.0, float(np.abs(currents).max())) / droop
    assert np.all(np.diff(sorted_currents) >= -slack)


@given(refs=setpoints, droop=droop_values)
@settings(max_examples=100, deadline=None)
def test_spread_independent_of_load(refs, droop):
    """Equal droops: the current *spread* is set by the setpoint
    mismatch only; the load shifts all currents equally."""
    light, _ = droop_sharing(refs, [droop] * len(refs), 10.0)
    heavy, _ = droop_sharing(refs, [droop] * len(refs), 500.0)
    assert (light.max() - light.min()) == pytest.approx(
        heavy.max() - heavy.min(), abs=1e-9
    )


@given(
    load=st.floats(min_value=1.0, max_value=500.0),
    scale=st.floats(min_value=1.5, max_value=10.0),
    droop=droop_values,
)
@settings(max_examples=60, deadline=None)
def test_mismatch_scales_with_inverse_droop(load, scale, droop):
    refs = [1.002, 1.0]
    soft, _ = droop_sharing(refs, [droop * scale] * 2, load)
    stiff, _ = droop_sharing(refs, [droop] * 2, load)
    soft_gap = soft[0] - soft[1]
    stiff_gap = stiff[0] - stiff[1]
    assert stiff_gap == pytest.approx(soft_gap * scale, rel=1e-9)
