"""Architecture specification tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DPMIH, DSCH
from repro.core.architectures import (
    ALL_ARCHITECTURES,
    ArchitectureKind,
    ArchitectureSpec,
    architecture,
    dual_stage_a3,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.errors import ConfigError
from repro.pdn.interconnect import ADVANCED_CU_PAD, MICRO_BUMP
from repro.placement.planner import PlacementStyle


class TestPaperSet:
    def test_five_architectures(self):
        assert len(ALL_ARCHITECTURES) == 5

    def test_names(self):
        assert [a.name for a in ALL_ARCHITECTURES] == [
            "A0",
            "A1",
            "A2",
            "A3@12V",
            "A3@6V",
        ]

    def test_lookup(self):
        assert architecture("a3@12v").intermediate_voltage_v == 12.0

    def test_unknown_lookup(self):
        with pytest.raises(ConfigError):
            architecture("A9")


class TestA0:
    def test_kind(self):
        assert reference_a0().kind is ArchitectureKind.PCB_CONVERSION

    def test_not_vertical(self):
        assert not reference_a0().is_vertical

    def test_micro_bump_attach(self):
        assert reference_a0().die_attach is MICRO_BUMP

    def test_no_pol_stage(self):
        assert reference_a0().pol_stage_style is None


class TestA1A2:
    def test_a1_periphery(self):
        assert single_stage_a1().pol_stage_style is PlacementStyle.PERIPHERY

    def test_a2_below_die(self):
        assert single_stage_a2().pol_stage_style is PlacementStyle.BELOW_DIE

    def test_vertical_flags(self):
        assert single_stage_a1().is_vertical
        assert single_stage_a2().is_vertical

    def test_single_stage_flags(self):
        assert not single_stage_a1().is_dual_stage
        assert not single_stage_a2().is_dual_stage

    def test_cu_pad_attach(self):
        assert single_stage_a1().die_attach is ADVANCED_CU_PAD
        assert single_stage_a2().die_attach is ADVANCED_CU_PAD


class TestA3:
    def test_names_for_paper_rails(self):
        assert dual_stage_a3(12.0).name == "A3@12V"
        assert dual_stage_a3(6.0).name == "A3@6V"

    def test_exploratory_rail_flagged(self):
        assert dual_stage_a3(8.0).name == "A3@8V*"

    def test_stage1_default_dpmih(self):
        assert dual_stage_a3(12.0).stage1_converter is DPMIH

    def test_stage1_override(self):
        assert dual_stage_a3(12.0, stage1_converter=DSCH).stage1_converter is (
            DSCH
        )

    def test_dual_stage_flag(self):
        assert dual_stage_a3(12.0).is_dual_stage

    def test_pol_stage_below_die(self):
        assert dual_stage_a3(12.0).pol_stage_style is PlacementStyle.BELOW_DIE

    def test_rejects_rail_at_pol_voltage(self):
        with pytest.raises(ConfigError):
            dual_stage_a3(1.0)


class TestInvariantValidation:
    def test_a0_cannot_have_pol_stage(self):
        with pytest.raises(ConfigError):
            ArchitectureSpec(
                name="bad",
                kind=ArchitectureKind.PCB_CONVERSION,
                description="",
                die_attach=MICRO_BUMP,
                pol_stage_style=PlacementStyle.PERIPHERY,
            )

    def test_vertical_requires_pol_stage(self):
        with pytest.raises(ConfigError):
            ArchitectureSpec(
                name="bad",
                kind=ArchitectureKind.SINGLE_STAGE_VERTICAL,
                description="",
                die_attach=ADVANCED_CU_PAD,
                pol_stage_style=None,
            )

    def test_dual_stage_requires_rail(self):
        with pytest.raises(ConfigError):
            ArchitectureSpec(
                name="bad",
                kind=ArchitectureKind.DUAL_STAGE_VERTICAL,
                description="",
                die_attach=ADVANCED_CU_PAD,
                pol_stage_style=PlacementStyle.BELOW_DIE,
                stage1_converter=DPMIH,
            )

    def test_single_stage_rejects_rail(self):
        with pytest.raises(ConfigError):
            ArchitectureSpec(
                name="bad",
                kind=ArchitectureKind.SINGLE_STAGE_VERTICAL,
                description="",
                die_attach=ADVANCED_CU_PAD,
                pol_stage_style=PlacementStyle.PERIPHERY,
                intermediate_voltage_v=12.0,
            )

    def test_dual_stage_requires_stage1_converter(self):
        with pytest.raises(ConfigError):
            ArchitectureSpec(
                name="bad",
                kind=ArchitectureKind.DUAL_STAGE_VERTICAL,
                description="",
                die_attach=ADVANCED_CU_PAD,
                pol_stage_style=PlacementStyle.BELOW_DIE,
                intermediate_voltage_v=12.0,
            )
