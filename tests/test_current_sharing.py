"""Per-VR current-sharing analysis tests (the paper's 16-27 A and
10-93 A observations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converters.catalog import DPMIH, DSCH
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.current_sharing import analyze_current_sharing
from repro.errors import ConfigError
from repro.pdn.powermap import PowerMap


@pytest.fixture(scope="module")
def a1_sharing():
    return analyze_current_sharing(single_stage_a1(), DSCH)


@pytest.fixture(scope="module")
def a2_sharing():
    return analyze_current_sharing(single_stage_a2(), DSCH)


class TestPaperClaims:
    def test_a1_range_matches_paper(self, a1_sharing):
        # Paper: 16 to 27 A.
        assert a1_sharing.min_current_a == pytest.approx(16.0, abs=4.0)
        assert a1_sharing.max_current_a == pytest.approx(27.0, abs=4.0)

    def test_a2_range_matches_paper(self, a2_sharing):
        # Paper: ~10 to ~93 A.
        assert a2_sharing.min_current_a == pytest.approx(10.0, abs=3.0)
        assert a2_sharing.max_current_a == pytest.approx(93.0, abs=15.0)

    def test_a2_much_broader_than_a1(self, a1_sharing, a2_sharing):
        assert a2_sharing.spread_ratio > 3 * a1_sharing.spread_ratio

    def test_means_equal_uniform_share(self, a1_sharing, a2_sharing):
        assert a1_sharing.mean_current_a == pytest.approx(1000 / 48, rel=0.01)
        assert a2_sharing.mean_current_a == pytest.approx(1000 / 48, rel=0.01)

    def test_a2_center_vrs_overloaded_vs_rating(self, a2_sharing):
        # DSCH is rated 30 A; the hotspot pushes center VRs beyond it —
        # the design challenge the paper highlights for A2.
        assert a2_sharing.overloaded_count > 0

    def test_a1_no_overloads(self, a1_sharing):
        assert a1_sharing.overloaded_count == 0


class TestConservation:
    def test_a1_currents_sum_to_load(self, a1_sharing):
        assert a1_sharing.currents_a.sum() == pytest.approx(1000.0, rel=1e-6)

    def test_a2_currents_sum_to_load(self, a2_sharing):
        assert a2_sharing.currents_a.sum() == pytest.approx(1000.0, rel=1e-6)

    def test_all_currents_positive(self, a2_sharing):
        assert np.all(a2_sharing.currents_a > 0)

    def test_counts_match_plan(self, a1_sharing, a2_sharing):
        assert len(a1_sharing.currents_a) == a1_sharing.plan.vr_count == 48
        assert len(a2_sharing.currents_a) == 48


class TestMapSensitivity:
    def test_uniform_map_evens_a2(self):
        # Residual spread on a uniform map is purely geometric (edge
        # VRs own larger cells, the last grid row holds 6 not 7) and
        # stays far below the hotspot-driven spread.
        uniform = analyze_current_sharing(
            single_stage_a2(), DSCH, power_map=PowerMap.uniform()
        )
        hotspot = analyze_current_sharing(single_stage_a2(), DSCH)
        assert uniform.spread_ratio < 3.0
        assert uniform.spread_ratio < 0.5 * hotspot.spread_ratio

    def test_sharper_hotspot_widens_a2(self):
        mild = analyze_current_sharing(
            single_stage_a2(),
            DSCH,
            power_map=PowerMap.hotspot_mixture(0.7, 0.2),
        )
        sharp = analyze_current_sharing(
            single_stage_a2(),
            DSCH,
            power_map=PowerMap.hotspot_mixture(0.3, 0.1),
        )
        assert sharp.spread_ratio > mild.spread_ratio

    def test_corner_hotspot_shifts_peak_vr(self):
        corner = analyze_current_sharing(
            single_stage_a2(),
            DSCH,
            power_map=PowerMap.gaussian(center=(0.2, 0.2), sigma=0.1),
        )
        peak_vr = int(np.argmax(corner.currents_a))
        position = corner.plan.positions[peak_vr]
        assert position.x < 0.5 and position.y < 0.5


class TestDPMIHSharing:
    def test_a2_dpmih_center_heavy(self):
        result = analyze_current_sharing(single_stage_a2(), DPMIH)
        # 7 below-die VRs + 5 periphery overflow: the under-die ones
        # near the hotspot carry far more.
        assert result.plan.vr_count == 12
        assert result.max_current_a > 2 * result.mean_current_a


class TestInterface:
    def test_a0_rejected(self):
        with pytest.raises(ConfigError):
            analyze_current_sharing(reference_a0(), DSCH)

    def test_output_resistance_validated(self):
        with pytest.raises(ConfigError):
            analyze_current_sharing(
                single_stage_a1(), DSCH, output_resistance_ohm=0.0
            )

    def test_lateral_loss_positive(self, a1_sharing):
        assert a1_sharing.lateral_loss_w > 0

    def test_droop_reported(self, a2_sharing):
        assert a2_sharing.worst_droop_v > 0

    def test_stronger_droop_resistance_evens_sharing(self):
        soft = analyze_current_sharing(
            single_stage_a2(), DSCH, output_resistance_ohm=0.1e-3
        )
        stiff = analyze_current_sharing(
            single_stage_a2(), DSCH, output_resistance_ohm=5e-3
        )
        assert stiff.spread_ratio < soft.spread_ratio
