"""Parity of the structured fast-Poisson engine against the LU oracle.

Every path through :class:`repro.pdn.fast_poisson.StructuredGridPDN`
— pure DCT/Woodbury solves, ring-bus and VR-branch corrections,
disabled-source scenarios, and the PCG mode for per-edge metal
variation — must reproduce the ``FactorizedPDN`` splu oracle to 1e-8
relative on every node voltage, across random meshes, anisotropic
edge resistances, and irregular sink maps.  The forced-fallback path
(``engine="auto"`` when CG stalls) must silently produce the oracle's
answer, and ``engine="structured"`` must surface the failure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.pdn.fast_poisson as fast_poisson
from repro.errors import ConfigError
from repro.pdn.fast_poisson import (
    FastPoissonOperator,
    StructuredGridPDN,
    StructuredSolveError,
    dct2_basis,
    poisson_mode_eigenvalues,
)
from repro.pdn.grid import STRUCTURED_AUTO_MIN_CELLS, GridPDN
from repro.pdn.pcg import PCGResult, pcg_solve

RTOL = 1e-8


# -- FastPoissonOperator ------------------------------------------------------------


def path_laplacian(n: int, boundary: str) -> np.ndarray:
    lap = 2.0 * np.eye(n)
    lap -= np.diag(np.ones(n - 1), 1) + np.diag(np.ones(n - 1), -1)
    if boundary == "neumann":
        lap[0, 0] = lap[-1, -1] = 1.0
    return lap


@pytest.mark.parametrize("boundary", ["neumann", "dirichlet"])
@pytest.mark.parametrize("n", [1, 2, 5, 9])
def test_mode_eigenvalues_match_dense_spectrum(n, boundary):
    """The closed-form mode eigenvalues are the path Laplacian's."""
    if n == 1:
        # One node: no edges free-ended (L = 0), two grounded ends
        # otherwise (L = 2).
        lam_ref = np.array([0.0 if boundary == "neumann" else 2.0])
    else:
        lam_ref = np.sort(np.linalg.eigvalsh(path_laplacian(n, boundary)))
    lam = np.sort(poisson_mode_eigenvalues(n, boundary))
    assert np.allclose(lam, lam_ref, atol=1e-12)


def test_dct2_basis_diagonalizes_free_laplacian():
    """B L Bᵀ is diagonal with the neumann mode eigenvalues."""
    n = 7
    basis = dct2_basis(n)
    assert np.allclose(basis @ basis.T, np.eye(n), atol=1e-12)
    modal = basis @ path_laplacian(n, "neumann") @ basis.T
    assert np.allclose(
        np.diag(modal), poisson_mode_eigenvalues(n), atol=1e-12
    )
    assert np.abs(modal - np.diag(np.diag(modal))).max() < 1e-12


@given(
    nx=st.integers(min_value=2, max_value=7),
    ny=st.integers(min_value=2, max_value=7),
    gx=st.floats(min_value=0.1, max_value=50.0),
    gy=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=25, deadline=None)
def test_operator_solves_deflated_kron_system(nx, ny, gx, gy):
    """op.solve inverts M = gx·(I⊗Lx) + gy·(Ly⊗I) + τ·u₀u₀ᵀ exactly."""
    op = FastPoissonOperator(nx, ny, gx, gy)
    cells = nx * ny
    matrix = gy * np.kron(
        path_laplacian(ny, "neumann"), np.eye(nx)
    ) + gx * np.kron(np.eye(ny), path_laplacian(nx, "neumann"))
    u0 = np.full(cells, 1.0 / np.sqrt(cells))
    matrix = matrix + op.deflation_tau * np.outer(u0, u0)
    rng = np.random.default_rng(nx * 31 + ny)
    rhs = rng.standard_normal((cells, 3))
    solved = op.solve(rhs)
    assert np.abs(matrix @ solved - rhs).max() < 1e-9 * max(
        1.0, np.abs(rhs).max()
    )
    one = op.solve(rhs[:, 0])
    assert one.shape == (cells,)
    assert np.allclose(one, solved[:, 0], atol=1e-12)


def test_operator_accepts_complex_rhs():
    op = FastPoissonOperator(5, 4, 2.0, 3.0)
    rhs = np.random.default_rng(0).standard_normal(20) + 1j
    solved = op.solve(rhs)
    assert np.iscomplexobj(solved)
    assert np.allclose(
        solved, op.solve(rhs.real) + 1j * op.solve(rhs.imag), atol=1e-12
    )


# -- parity helpers ------------------------------------------------------------------


def build_pair(
    n: int,
    sheet: float,
    sources,
    r_out: float,
    sink_scale: float,
    seed: int,
    ny: int | None = None,
    height: float = 1e-2,
    ring_ohm: float | None = None,
) -> tuple[GridPDN, GridPDN]:
    """The same grid twice: structured engine and factorized oracle."""
    pair = []
    for engine in ("structured", "factorized"):
        grid = GridPDN(
            1e-2, height, sheet, nx=n, ny=ny or n, engine=engine
        )
        rng = np.random.default_rng(seed)
        sinks = sink_scale * rng.random((ny or n, n))
        # Irregular sinks: a random subset of cells draws nothing.
        sinks[rng.random((ny or n, n)) < 0.3] = 0.0
        grid.set_sink_array(sinks)
        for k, (x, y) in enumerate(sources):
            grid.add_source(f"s{k}", x, y, 1.0, r_out)
        if ring_ohm is not None and len(sources) >= 3:
            grid.connect_sources_with_ring_bus(ring_ohm)
        pair.append(grid)
    return pair[0], pair[1]


def assert_grid_parity(structured: GridPDN, oracle: GridPDN, **kwargs):
    fast = (
        structured.solve_disabled(kwargs["disabled"])
        if "disabled" in kwargs
        else structured.solve()
    )
    ref = (
        oracle.solve_disabled(kwargs["disabled"])
        if "disabled" in kwargs
        else oracle.solve()
    )
    scale = max(float(np.abs(ref.voltage_map).max()), 1e-12)
    assert np.abs(fast.voltage_map - ref.voltage_map).max() <= RTOL * scale
    i_scale = max(float(np.abs(ref.source_currents_a).max()), 1e-12)
    assert (
        np.abs(fast.source_currents_a - ref.source_currents_a).max()
        <= 1e-6 * i_scale
    )


positions = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


# -- parity: uniform meshes -----------------------------------------------------------


@given(
    n=st.integers(min_value=3, max_value=8),
    ny=st.integers(min_value=3, max_value=8),
    sheet=st.floats(min_value=1e-4, max_value=1e-1),
    height=st.floats(min_value=4e-3, max_value=3e-2),
    sources=st.lists(positions, min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_structured_matches_oracle_on_uniform_meshes(
    n, ny, sheet, height, sources, seed
):
    """DCT/Woodbury solves equal splu solves on anisotropic meshes
    (rectangular dies make rx != ry) with irregular sinks."""
    structured, oracle = build_pair(
        n, sheet, sources, 1e-3, 0.1, seed, ny=ny, height=height
    )
    assert_grid_parity(structured, oracle)


@given(
    n=st.integers(min_value=4, max_value=8),
    sheet=st.floats(min_value=1e-4, max_value=1e-1),
    sources=st.lists(positions, min_size=3, max_size=6, unique=True),
    ring_ohm=st.floats(min_value=1e-4, max_value=1e-1),
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_structured_matches_oracle_with_ring_bus_and_failures(
    n, sheet, sources, ring_ohm, seed, data
):
    """Ring-bus segments and disabled VRs ride the same correction."""
    structured, oracle = build_pair(
        n, sheet, sources, 1e-3, 0.1, seed, ring_ohm=ring_ohm
    )
    assert_grid_parity(structured, oracle)
    disabled = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(sources) - 1),
            min_size=1,
            max_size=len(sources) - 1,
            unique=True,
        )
    )
    assert_grid_parity(structured, oracle, disabled=disabled)


@given(
    n=st.integers(min_value=3, max_value=7),
    sources=st.lists(positions, min_size=2, max_size=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_batched_paths_match_oracle(n, sources, seed):
    """solve_many and solve_disabled_many equal per-scenario solves."""
    structured, oracle = build_pair(n, 1e-2, sources, 1e-3, 0.1, seed)
    rng = np.random.default_rng(seed)
    maps = rng.random((3, n, n))
    for fast, ref in zip(
        structured.solve_many(maps), oracle.solve_many(maps)
    ):
        scale = max(float(np.abs(ref.voltage_map).max()), 1e-12)
        assert (
            np.abs(fast.voltage_map - ref.voltage_map).max()
            <= RTOL * scale
        )
    scenarios = [(k,) for k in range(min(len(sources), 2))]
    for fast, ref in zip(
        structured.solve_disabled_many(scenarios),
        oracle.solve_disabled_many(scenarios),
    ):
        scale = max(float(np.abs(ref.voltage_map).max()), 1e-12)
        assert (
            np.abs(fast.voltage_map - ref.voltage_map).max()
            <= RTOL * scale
        )


# -- parity: per-edge variation (PCG mode) --------------------------------------------


@given(
    n=st.integers(min_value=3, max_value=8),
    sheet=st.floats(min_value=1e-3, max_value=1e-1),
    sources=st.lists(positions, min_size=1, max_size=4),
    spread=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_pcg_variation_matches_oracle(n, sheet, sources, spread, seed):
    """Per-edge resistance variation solves through preconditioned CG
    and still lands on the oracle to 1e-8."""
    structured, oracle = build_pair(n, sheet, sources, 1e-3, 0.1, seed)
    rng = np.random.default_rng(seed + 1)
    sx = rng.uniform(1.0 - spread, 1.0 + 2 * spread, (n, n - 1))
    sy = rng.uniform(1.0 - spread, 1.0 + 2 * spread, (n - 1, n))
    structured.set_edge_resistance_scale(sx, sy)
    oracle.set_edge_resistance_scale(sx, sy)
    assert structured._ensure_structure().fast.mode == "pcg"
    assert_grid_parity(structured, oracle)


def test_edge_scale_validation():
    grid = GridPDN(1e-2, 1e-2, 1e-2, nx=4, ny=5)
    with pytest.raises(ConfigError):
        grid.set_edge_resistance_scale(np.ones((4, 4)), None)
    with pytest.raises(ConfigError):
        grid.set_edge_resistance_scale(None, np.zeros((4, 4)))


def test_edge_scale_changes_the_answer():
    """The scale maps actually reach the physics (both engines)."""
    for engine in ("structured", "factorized"):
        grid = GridPDN(1e-2, 1e-2, 1e-2, nx=5, ny=5, engine=engine)
        grid.set_sink_array(np.full((5, 5), 0.1))
        grid.add_source("s", 0.0, 0.0, 1.0, 1e-3)
        base = grid.solve().worst_droop_v
        grid.set_edge_resistance_scale(
            np.full((5, 4), 4.0), np.full((4, 5), 4.0)
        )
        scaled = grid.solve().worst_droop_v
        assert scaled > 2.0 * base


# -- engine selection and fallback ----------------------------------------------------


def test_engine_argument_validated():
    with pytest.raises(ConfigError):
        GridPDN(1e-2, 1e-2, 1e-2, nx=4, ny=4, engine="magic")


def test_auto_engine_picks_by_mesh_size():
    small = GridPDN(1e-2, 1e-2, 1e-2, nx=4, ny=4)
    assert small._resolve_engine() == "factorized"
    side = int(np.ceil(np.sqrt(STRUCTURED_AUTO_MIN_CELLS)))
    large = GridPDN(1e-2, 1e-2, 1e-2, nx=side, ny=side)
    assert large._resolve_engine() == "structured"
    forced = GridPDN(1e-2, 1e-2, 1e-2, nx=4, ny=4, engine="structured")
    assert forced._resolve_engine() == "structured"


def _stalled_pcg(matvec, rhs, **kwargs) -> PCGResult:
    return PCGResult(
        x=np.zeros_like(np.asarray(rhs)),
        converged=False,
        iterations=0,
        residual_norm=1.0,
    )


def test_auto_falls_back_when_cg_stalls(monkeypatch):
    """A stalled CG under engine="auto" silently lands on the oracle."""
    monkeypatch.setattr(fast_poisson, "pcg_solve", _stalled_pcg)
    structured, oracle = build_pair(
        6, 1e-2, [(0.0, 0.0), (1.0, 1.0)], 1e-3, 0.1, 11
    )
    structured.engine = "auto"
    sx = np.full((6, 5), 1.5)
    structured.set_edge_resistance_scale(sx, None)
    oracle.set_edge_resistance_scale(sx, None)
    assert_grid_parity(structured, oracle)


def test_structured_engine_surfaces_cg_stall(monkeypatch):
    """engine="structured" raises instead of silently falling back."""
    monkeypatch.setattr(fast_poisson, "pcg_solve", _stalled_pcg)
    structured, _ = build_pair(
        6, 1e-2, [(0.0, 0.0), (1.0, 1.0)], 1e-3, 0.1, 11
    )
    structured.set_edge_resistance_scale(np.full((6, 5), 1.5), None)
    with pytest.raises(StructuredSolveError):
        structured.solve()


def test_real_pcg_converges_on_variation():
    """The real kernel (not the stub) converges well inside its cap."""
    rng = np.random.default_rng(5)
    matrix = rng.standard_normal((30, 30))
    matrix = matrix @ matrix.T + 30 * np.eye(30)
    rhs = rng.standard_normal((30, 2))
    result = pcg_solve(lambda v: matrix @ v, rhs, tol=1e-12)
    assert result.converged
    assert np.abs(matrix @ result.x - rhs).max() < 1e-9
