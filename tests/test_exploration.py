"""Design-space exploration / ablation tests."""

from __future__ import annotations

import math

import pytest

from repro.converters.catalog import StageModelMode
from repro.core.exploration import (
    conversion_location_sweep,
    hotspot_sweep,
    intermediate_voltage_sweep,
    rdl_thickness_sweep,
    si_vs_gan_buck,
    stage_mode_comparison,
)


class TestConversionLocationSweep:
    """Fig. 3's message: loss falls as conversion approaches the POL."""

    @pytest.fixture(scope="class")
    def points(self):
        return conversion_location_sweep()

    def test_four_locations(self, points):
        assert [p.label for p in points] == [
            "PCB",
            "package",
            "interposer-periphery",
            "below-die",
        ]

    def test_monotonic_improvement(self, points):
        losses = [p.total_loss_w for p in points]
        assert losses == sorted(losses, reverse=True)

    def test_pcb_worst_by_far(self, points):
        assert points[0].total_loss_w > 2 * points[2].total_loss_w

    def test_package_conversion_already_helps(self, points):
        # Moving conversion past the board planes removes the largest
        # single horizontal term.
        assert points[1].total_loss_w < 0.65 * points[0].total_loss_w

    def test_efficiencies_consistent(self, points):
        for p in points:
            assert p.efficiency == pytest.approx(
                1000.0 / (1000.0 + p.total_loss_w), rel=1e-9
            )


class TestIntermediateVoltageSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return intermediate_voltage_sweep()

    def test_paper_rails_present(self, points):
        values = [p.value for p in points]
        assert 6.0 in values and 12.0 in values

    def test_higher_rail_less_rail_loss(self, points):
        by_v = {p.value: p for p in points if not math.isnan(p.total_loss_w)}
        assert by_v[12.0].total_loss_w < by_v[6.0].total_loss_w

    def test_3v_rail_worst_of_feasible(self, points):
        feasible = [p for p in points if not math.isnan(p.total_loss_w)]
        worst = max(feasible, key=lambda p: p.total_loss_w)
        assert worst.value == 3.0

    def test_all_points_labeled(self, points):
        assert all(p.label.startswith("A3@") for p in points)


class TestStageModeComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return stage_mode_comparison()

    def test_three_entries(self, results):
        assert set(results) == {
            "as-published",
            "ratio-scaled",
            "single-stage-A1",
        }

    def test_paper_mode_orders_dual_below_single(self, results):
        assert (
            results["as-published"].efficiency
            < results["single-stage-A1"].efficiency
        )

    def test_ratio_scaling_flips_or_closes_gap(self, results):
        # With ratio-optimized stages dual-stage beats the published
        # reuse and overtakes single-stage.
        assert (
            results["ratio-scaled"].total_loss_w
            < results["as-published"].total_loss_w
        )
        assert (
            results["ratio-scaled"].efficiency
            > results["single-stage-A1"].efficiency
        )


class TestRDLSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return rdl_thickness_sweep()

    def test_thicker_rdl_less_loss(self, points):
        losses = [p.total_loss_w for p in points]
        assert losses == sorted(losses, reverse=True)

    def test_halving_thickness_near_doubles_horizontal(self, points):
        by_t = {p.value: p for p in points}
        thin = by_t[9.0]
        thick = by_t[27.0]
        # Horizontal detail string carries the wattage; compare totals
        # via loss difference instead.
        assert thin.total_loss_w > thick.total_loss_w


class TestHotspotSweep:
    def test_spread_grows_with_hotspot(self):
        results = hotspot_sweep(uniform_fractions=(1.0, 0.45, 0.1))
        a2_spreads = [a2.spread_ratio for _f, _a1, a2 in results]
        assert a2_spreads == sorted(a2_spreads)

    def test_a1_stays_bounded(self):
        results = hotspot_sweep(uniform_fractions=(1.0, 0.3))
        for _fraction, a1, a2 in results:
            assert a1.spread_ratio <= a2.spread_ratio + 0.5


class TestSiVsGaN:
    @pytest.fixture(scope="class")
    def points(self):
        return si_vs_gan_buck()

    def test_gan_wins_at_every_frequency(self, points):
        by_freq: dict[float, dict[str, float]] = {}
        for p in points:
            if p.feasible:
                by_freq.setdefault(p.frequency_hz, {})[p.technology] = (
                    p.efficiency
                )
        assert by_freq
        for eta in by_freq.values():
            assert eta["GaN"] > eta["Si"]

    def test_gan_advantage_grows_with_frequency(self, points):
        gaps = {}
        by_freq: dict[float, dict[str, float]] = {}
        for p in points:
            if p.feasible:
                by_freq.setdefault(p.frequency_hz, {})[p.technology] = (
                    p.efficiency
                )
        for freq, eta in by_freq.items():
            gaps[freq] = eta["GaN"] - eta["Si"]
        freqs = sorted(gaps)
        assert gaps[freqs[-1]] > gaps[freqs[0]]


class TestIntermediateSweepModes:
    def test_ratio_scaled_sweep_runs(self):
        points = intermediate_voltage_sweep(
            voltages=(6.0, 12.0), mode=StageModelMode.RATIO_SCALED
        )
        assert len(points) == 2
        assert all(not math.isnan(p.total_loss_w) for p in points)


class TestDecapDensitySweep:
    """Worst-node Z(f) vs per-node decap allocation (grid-level AC)."""

    @pytest.fixture(scope="class")
    def points(self):
        import numpy as np

        from repro.core.exploration import decap_density_sweep

        return decap_density_sweep(
            densities=(0.5, 1.0, 4.0),
            grid_nodes=8,
            frequencies_hz=np.logspace(4, 9, 41),
        )

    def test_labels_and_order(self, points):
        assert [p.density for p in points] == [0.5, 1.0, 4.0]
        assert points[0].label == "0.5 cells/node"

    def test_more_decap_never_raises_the_peak(self, points):
        peaks = [p.peak_impedance_ohm for p in points]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(peaks, peaks[1:]))

    def test_peaks_positive_and_in_band(self, points):
        for p in points:
            assert p.peak_impedance_ohm > 0
            assert 1e4 <= p.peak_frequency_hz <= 1e9

    def test_rejects_empty_densities(self):
        from repro.core.exploration import decap_density_sweep
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            decap_density_sweep(densities=())
