"""Thermal ladder and electro-thermal coupling tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DSCH
from repro.core.architectures import reference_a0, single_stage_a2
from repro.core.electro_thermal import electro_thermal_loss
from repro.errors import ConfigError
from repro.pdn.thermal import StackTemperatures, ThermalStack


class TestThermalStack:
    def test_no_power_is_ambient(self):
        stack = ThermalStack(ambient_c=35.0)
        temps = stack.temperatures(0.0)
        assert temps.die_c == pytest.approx(35.0)
        assert temps.board_c == pytest.approx(35.0)

    def test_die_is_hottest(self):
        temps = ThermalStack().temperatures(1000.0)
        assert temps.die_c == temps.hottest_c
        assert temps.die_c > temps.interposer_c > temps.package_c > (
            temps.board_c
        )

    def test_linear_superposition(self):
        stack = ThermalStack()
        t1 = stack.temperatures(500.0)
        t2 = stack.temperatures(1000.0)
        ambient = stack.ambient_c
        assert t2.die_c - ambient == pytest.approx(
            2 * (t1.die_c - ambient)
        )

    def test_total_resistance(self):
        stack = ThermalStack(
            r_die_to_interposer_c_per_w=0.02,
            r_interposer_to_package_c_per_w=0.015,
            r_package_to_board_c_per_w=0.01,
            r_board_to_ambient_c_per_w=0.03,
            ambient_c=0.0,
        )
        temps = stack.temperatures(1000.0)
        assert temps.die_c == pytest.approx(1000.0 * 0.075)

    def test_interposer_heat_skips_die_resistance(self):
        stack = ThermalStack(ambient_c=0.0)
        die_only = stack.temperatures(100.0)
        vr_only = stack.temperatures(0.0, interposer_power_w=100.0)
        assert vr_only.die_c < die_only.die_c
        assert vr_only.interposer_c == pytest.approx(
            die_only.interposer_c
        )

    def test_rejects_negative_heat(self):
        with pytest.raises(ConfigError):
            ThermalStack().temperatures(-1.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigError):
            ThermalStack(r_die_to_interposer_c_per_w=0.0)


class TestElectroThermal:
    @pytest.fixture(scope="class")
    def a2_result(self):
        return electro_thermal_loss(single_stage_a2(), DSCH)

    def test_converges(self, a2_result):
        assert a2_result.iterations < 50

    def test_heating_increases_loss(self, a2_result):
        assert a2_result.loss_increase_w > 0
        assert a2_result.total_loss_w > a2_result.breakdown_25c.total_loss_w

    def test_increase_is_modest(self, a2_result):
        # A few percent relative - a derating, not a runaway.
        assert a2_result.loss_increase_w < (
            0.25 * a2_result.breakdown_25c.total_loss_w
        )

    def test_die_temperature_realistic(self, a2_result):
        # 1 kW through a 75 C/kW stack from 35 C ambient.
        assert 80.0 < a2_result.temperatures.die_c < 150.0

    def test_efficiency_below_cold_value(self, a2_result):
        assert a2_result.efficiency < a2_result.breakdown_25c.efficiency

    def test_a0_converter_heat_stays_on_board(self):
        a0 = electro_thermal_loss(reference_a0(), DSCH)
        a2 = electro_thermal_loss(single_stage_a2(), DSCH)
        # A0 dumps its conversion loss on the board; the interposer
        # runs cooler than in A2 where ~112 W of VR loss is embedded.
        assert (
            a0.temperatures.interposer_c - a0.temperatures.package_c
            < a2.temperatures.interposer_c - a2.temperatures.package_c
        )

    def test_hot_ambient_hurts(self):
        cool = electro_thermal_loss(
            single_stage_a2(), DSCH, stack=ThermalStack(ambient_c=25.0)
        )
        hot = electro_thermal_loss(
            single_stage_a2(), DSCH, stack=ThermalStack(ambient_c=55.0)
        )
        assert hot.total_loss_w > cool.total_loss_w

    def test_validation(self):
        with pytest.raises(ConfigError):
            electro_thermal_loss(single_stage_a2(), DSCH, max_iterations=0)
        with pytest.raises(ConfigError):
            electro_thermal_loss(single_stage_a2(), DSCH, tolerance_w=0.0)


class TestStackTemperaturesDataclass:
    def test_hottest(self):
        temps = StackTemperatures(
            die_c=90.0, interposer_c=80.0, package_c=70.0, board_c=60.0
        )
        assert temps.hottest_c == 90.0
