"""Bottom-up physics converter models: cross-validation tests."""

from __future__ import annotations

import pytest

from repro.converters.topologies.physics import (
    Dickson3LPhysics,
    DPMIHPhysics,
    DSCHPhysics,
    PhysicsDesign,
    cross_validate,
)
from repro.errors import ConfigError
from repro.materials import GAN_100V, SI_POWER_MOSFET


class TestCrossValidation:
    """Plausible device sizes must land near the published points —
    the sanity check that the calibrated curves are physical."""

    def test_dsch_within_one_point(self):
        result = cross_validate(DSCHPhysics(), 0.915, 10.0)
        assert result["gap"] < 0.02

    def test_dpmih_within_one_point(self):
        result = cross_validate(DPMIHPhysics(), 0.909, 30.0)
        assert result["gap"] < 0.02

    def test_3lhd_within_one_point(self):
        result = cross_validate(Dickson3LPhysics(), 0.904, 3.0)
        assert result["gap"] < 0.02

    def test_cross_validate_validates_eta(self):
        with pytest.raises(ConfigError):
            cross_validate(DSCHPhysics(), 1.5, 10.0)


class TestDSCHPhysics:
    def test_duty_is_tripled(self):
        assert DSCHPhysics().buck_duty == pytest.approx(3.0 / 48.0)

    def test_loss_increases_with_load(self):
        model = DSCHPhysics()
        assert model.loss_w(25.0) > model.loss_w(5.0)

    def test_loss_increases_with_frequency(self):
        slow = DSCHPhysics(design=PhysicsDesign(frequency_hz=0.5e6))
        fast = DSCHPhysics(design=PhysicsDesign(frequency_hz=4e6))
        assert fast.loss_w(10.0) > slow.loss_w(10.0)

    def test_switch_sizing_has_interior_optimum(self):
        # Bigger devices cut conduction but add output-charge loss:
        # at low frequency the big switch wins; at high frequency the
        # ranking inverts (the sizing trade-off behind R_on*Q_oss).
        def loss(r_on: float, frequency: float) -> float:
            design = PhysicsDesign(
                switch_r_on_ohm=r_on, frequency_hz=frequency
            )
            return DSCHPhysics(design=design).loss_w(30.0)

        assert loss(1e-3, 0.2e6) < loss(6e-3, 0.2e6)
        assert loss(1e-3, 4e6) > loss(6e-3, 4e6)

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigError):
            DSCHPhysics().loss_w(-1.0)


class TestDPMIHPhysics:
    def test_soft_switching_no_overlap_loss(self):
        model = DPMIHPhysics()
        assert model.switch.soft_switched

    def test_efficiency_peaks_mid_load(self):
        model = DPMIHPhysics()
        eta_low = model.efficiency(3.0)
        eta_mid = model.efficiency(30.0)
        assert eta_mid > eta_low

    def test_full_load_feasible(self):
        assert DPMIHPhysics().efficiency(100.0) > 0.80


class TestDicksonPhysics:
    def test_regulation_duty_20pct(self):
        assert Dickson3LPhysics().regulation_duty == pytest.approx(0.208, rel=0.01)

    def test_low_stress_after_front(self):
        model = Dickson3LPhysics()
        assert model.v_in_v / 10.0 == pytest.approx(4.8)

    def test_si_devices_worse(self):
        gan = Dickson3LPhysics()
        si = Dickson3LPhysics(
            design=PhysicsDesign(
                technology=SI_POWER_MOSFET,
                switch_r_on_ohm=8.0e-3,
                frequency_hz=2.0e6,
            )
        )
        assert si.efficiency(3.0) < gan.efficiency(3.0)


class TestDesignValidation:
    def test_rejects_zero_ron(self):
        with pytest.raises(ConfigError):
            PhysicsDesign(switch_r_on_ohm=0.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigError):
            PhysicsDesign(frequency_hz=0.0)

    def test_rejects_negative_dcr(self):
        with pytest.raises(ConfigError):
            PhysicsDesign(inductor_dcr_ohm=-1.0)

    def test_default_technology_exists(self):
        assert PhysicsDesign().technology is GAN_100V
