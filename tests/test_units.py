"""Unit-helper tests."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestLengthConversions:
    def test_mm_to_meters(self):
        assert units.mm(1.0) == pytest.approx(1e-3)

    def test_um_to_meters(self):
        assert units.um(1.0) == pytest.approx(1e-6)

    def test_mm2_to_square_meters(self):
        assert units.mm2(1.0) == pytest.approx(1e-6)

    def test_um2_to_square_meters(self):
        assert units.um2(1.0) == pytest.approx(1e-12)

    def test_roundtrip_mm(self):
        assert units.to_mm(units.mm(37.5)) == pytest.approx(37.5)

    def test_roundtrip_mm2(self):
        assert units.to_mm2(units.mm2(500.0)) == pytest.approx(500.0)

    def test_die_area_arithmetic(self):
        # 500 mm2 die has a ~22.36 mm side.
        side = math.sqrt(units.mm2(500.0))
        assert units.to_mm(side) == pytest.approx(22.3607, rel=1e-4)


class TestImpedanceConversions:
    def test_milliohm(self):
        assert units.milliohm(3.0) == pytest.approx(3e-3)

    def test_microohm(self):
        assert units.microohm(50.0) == pytest.approx(50e-6)

    def test_roundtrip_milliohm(self):
        assert units.to_milliohm(units.milliohm(2.5)) == pytest.approx(2.5)

    def test_roundtrip_microohm(self):
        assert units.to_microohm(units.microohm(7.0)) == pytest.approx(7.0)


class TestReactiveAndFrequency:
    def test_uh(self):
        assert units.uh(4.0) == pytest.approx(4e-6)

    def test_nh(self):
        assert units.nh(10.0) == pytest.approx(1e-8)

    def test_uf(self):
        assert units.uf(15.0) == pytest.approx(15e-6)

    def test_nf(self):
        assert units.nf(100.0) == pytest.approx(1e-7)

    def test_mhz(self):
        assert units.mhz(2.0) == pytest.approx(2e6)


class TestFormatting:
    def test_format_si_milli(self):
        assert units.format_si(1.3e-3, "Ohm") == "1.3 mOhm"

    def test_format_si_kilo(self):
        assert units.format_si(2500.0, "W") == "2.5 kW"

    def test_format_si_unity(self):
        assert units.format_si(3.0, "A") == "3 A"

    def test_format_si_zero(self):
        assert units.format_si(0.0, "V") == "0 V"

    def test_format_si_micro(self):
        assert "uOhm" in units.format_si(5e-5, "Ohm")

    def test_format_si_negative(self):
        assert units.format_si(-2e-3, "A").startswith("-2")

    def test_format_si_tiny_falls_back_to_scientific(self):
        text = units.format_si(1e-15, "F")
        assert "e-15" in text

    def test_percent(self):
        assert units.percent(0.423) == "42.3%"

    def test_percent_digits(self):
        assert units.percent(0.07654, digits=2) == "7.65%"
