"""CLI tests (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig7"])
        assert args.command == "fig7"

    def test_defaults_are_paper_system(self):
        args = build_parser().parse_args(["fig7"])
        assert args.power == 1000.0
        assert args.input_voltage == 48.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_command_registry_complete(self):
        assert {
            "fig1",
            "fig2",
            "fig3",
            "fig7",
            "tables",
            "sharing",
            "utilization",
            "experiments",
            "optimize",
            "floorplan",
            "export",
            "montecarlo",
            "redundancy",
            "decap",
            "transient",
            "place",
            "report",
        } == set(COMMANDS)

    def test_jobs_defaults_serial(self):
        args = build_parser().parse_args(["montecarlo"])
        assert args.jobs == "1"
        assert args.chunk_size is None
        assert args.samples == 512


class TestCommands:
    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        output = capsys.readouterr().out
        assert "A0" in output and "excluded" in output

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "DPMIH" in output and "BGA" in output

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Fig.1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Die current" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "below-die" in capsys.readouterr().out

    def test_sharing(self, capsys):
        assert main(["sharing"]) == 0
        output = capsys.readouterr().out
        assert "A1" in output and "A2" in output

    def test_utilization(self, capsys):
        assert main(["utilization"]) == 0
        output = capsys.readouterr().out
        assert "1200" in output

    def test_experiments_all_hold(self, capsys):
        assert main(["experiments"]) == 0
        assert "all claims hold" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize"]) == 0
        assert "best: A2" in capsys.readouterr().out

    def test_optimize_small_system(self, capsys):
        assert main(["optimize", "--power", "400"]) == 0
        output = capsys.readouterr().out
        assert "3LHD" in output  # feasible at 400 W

    def test_custom_power_flows_through(self, capsys):
        assert main(["utilization", "--power", "500"]) == 0
        assert "600" in capsys.readouterr().out  # 600 mm2 A0 die

    def test_floorplan(self, capsys):
        assert main(["floorplan"]) == 0
        output = capsys.readouterr().out
        assert "A1" in output and "#" in output

    def test_report_output_file(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert main(["report", "--output", str(path)]) == 0
        assert path.exists()
        assert "markdown report written" in capsys.readouterr().out

    def test_montecarlo(self, capsys):
        assert main(["montecarlo", "--samples", "16"]) == 0
        output = capsys.readouterr().out
        assert "mean" in output and "p95" in output

    def test_montecarlo_jobs_matches_serial(self, capsys):
        assert main(["montecarlo", "--samples", "16"]) == 0
        serial = capsys.readouterr().out
        assert main(["montecarlo", "--samples", "16", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.replace("jobs=1", "") == parallel.replace("jobs=2", "")

    def test_redundancy(self, capsys):
        assert main(["redundancy"]) == 0
        output = capsys.readouterr().out
        assert "tolerates any single failure: yes" in output

    def test_decap(self, capsys):
        assert main(["decap"]) == 0
        output = capsys.readouterr().out
        assert "cells/node" in output and "mOhm" in output

    def test_place(self, capsys):
        assert (
            main(
                [
                    "place",
                    "--grid-nodes",
                    "6",
                    "--budget-scales",
                    "1.0",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "optimized decap placement" in output
        assert "moves" in output and "uF" in output

    def test_transient(self, capsys):
        assert main(["transient"]) == 0
        output = capsys.readouterr().out
        assert "cells/node" in output and "droop" in output and "mV" in output

    def test_transient_jobs_matches_serial(self, capsys):
        assert main(["transient"]) == 0
        serial = capsys.readouterr().out
        assert main(["transient", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.replace("jobs=1", "") == parallel.replace("jobs=2", "")

    def test_export(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["export"]) == 0
        output = capsys.readouterr().out
        assert output.count("wrote ") == 4
        assert (tmp_path / "repro_csv" / "fig7_losses.csv").exists()
