"""Property-based parity of the compiled AC sweep engine (hypothesis).

The scalar :func:`repro.pdn.ac.solve_ac` oracle rebuilds and solves
the full phasor system at one frequency; :class:`repro.pdn.ac.ACSweep`
solves the whole grid on one compiled stamp structure.  On random RLC
ladder networks the two must agree to 1e-9 relative on every node
voltage at every frequency, and the compiled impedance probe must
match a scalar per-frequency probe loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.ac import (
    ACNetlist,
    ACSweep,
    CompiledACNetlist,
    impedance_at,
    probe_netlist,
    solve_ac,
)

EPS = float(np.finfo(float).eps)


def parity_rtol(compiled: CompiledACNetlist, frequency: float) -> float:
    """Tolerance for oracle parity at one frequency.

    Two LU implementations agree to O(eps * cond(A)); random hypothesis
    circuits can reach cond ~1e8, so the bound adapts while staying
    orders of magnitude below any genuine stamping bug.  The flagship
    (well-conditioned) circuits are pinned at a strict 1e-9 in
    ``tests/test_ac.py``.
    """
    cond = np.linalg.cond(compiled.matrix_at(frequency).toarray())
    return max(1e-9, 100.0 * EPS * cond)

resistances = st.floats(
    min_value=1e-4, max_value=1e3, allow_nan=False, allow_infinity=False
)
inductances = st.floats(
    min_value=1e-12, max_value=1e-6, allow_nan=False, allow_infinity=False
)
capacitances = st.floats(
    min_value=1e-9, max_value=1e-3, allow_nan=False, allow_infinity=False
)
frequencies = st.floats(
    min_value=1e3, max_value=1e9, allow_nan=False, allow_infinity=False
)
loads = st.floats(
    min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
)


def build_rlc_ladder(
    rails: list[float],
    inductors: list[float],
    decaps: list[float],
    esrs: list[float],
    load: float,
) -> ACNetlist:
    """A driven RLC ladder: V source -> R, L rungs with C+ESR shunts,
    an AC load at the end."""
    net = ACNetlist()
    net.add_voltage_source("v", "n0", 1.0)
    for i, rail in enumerate(rails):
        net.add_resistor(f"rail[{i}]", f"n{i}", f"n{i}r", rail)
        net.add_inductor(f"coil[{i}]", f"n{i}r", f"n{i+1}", inductors[i])
        net.add_capacitor(f"decap[{i}]", f"n{i+1}", f"n{i+1}c", decaps[i])
        net.add_resistor(f"esr[{i}]", f"n{i+1}c", net.GROUND, esrs[i])
    net.add_current_source("load", f"n{len(rails)}", net.GROUND, load)
    return net


def assert_sweep_matches_scalar(net: ACNetlist, freqs: np.ndarray) -> None:
    engine = ACSweep(net)
    sweep = engine.solve(freqs)
    for k, frequency in enumerate(freqs):
        reference = solve_ac(net, float(frequency))
        rtol = parity_rtol(engine.compiled, float(frequency))
        scale = max(
            (abs(reference.voltage(node)) for node in sweep.nodes),
            default=1.0,
        )
        scale = max(scale, 1e-12)
        for node in sweep.nodes:
            error = abs(sweep.voltage(node)[k] - reference.voltage(node))
            assert error <= rtol * scale, (
                f"node {node!r} at {frequency:.4g} Hz: "
                f"|dV| = {error:.3e} vs scale {scale:.3e}"
            )


@given(
    rails=st.lists(resistances, min_size=1, max_size=4),
    inductors=st.lists(inductances, min_size=4, max_size=4),
    decaps=st.lists(capacitances, min_size=4, max_size=4),
    esrs=st.lists(resistances, min_size=4, max_size=4),
    load=loads,
    freqs=st.lists(frequencies, min_size=1, max_size=6, unique=True),
)
@settings(max_examples=40, deadline=None)
def test_sweep_voltages_match_scalar_oracle(
    rails, inductors, decaps, esrs, load, freqs
):
    """Every node phasor of the compiled sweep equals solve_ac's."""
    net = build_rlc_ladder(rails, inductors, decaps, esrs, load)
    assert_sweep_matches_scalar(net, np.array(sorted(freqs)))


@given(
    rails=st.lists(resistances, min_size=1, max_size=3),
    inductors=st.lists(inductances, min_size=3, max_size=3),
    decaps=st.lists(capacitances, min_size=3, max_size=3),
    esrs=st.lists(resistances, min_size=3, max_size=3),
    load=loads,
    freqs=st.lists(frequencies, min_size=1, max_size=5, unique=True),
)
@settings(max_examples=40, deadline=None)
def test_impedance_probe_matches_scalar_loop(
    rails, inductors, decaps, esrs, load, freqs
):
    """impedance_at (compiled) equals a per-frequency solve_ac loop on
    the identical probe circuit."""
    net = build_rlc_ladder(rails, inductors, decaps, esrs, load)
    node = f"n{len(rails)}"
    grid = np.array(sorted(freqs))
    fast = impedance_at(net, node, grid)
    probe = probe_netlist(net, node)
    compiled = probe.compile_ac()
    scalar = np.array(
        [solve_ac(probe, float(f)).magnitude(node) for f in grid]
    )
    scale = max(float(scalar.max()), 1e-12)
    for k, f in enumerate(grid):
        rtol = parity_rtol(compiled, float(f))
        assert abs(fast[k] - scalar[k]) <= rtol * scale


@given(
    rails=st.lists(resistances, min_size=1, max_size=3),
    inductors=st.lists(inductances, min_size=3, max_size=3),
    decaps=st.lists(capacitances, min_size=3, max_size=3),
    esrs=st.lists(resistances, min_size=3, max_size=3),
    load=loads,
    frequency=frequencies,
)
@settings(max_examples=40, deadline=None)
def test_sweep_point_view_matches_scalar(
    rails, inductors, decaps, esrs, load, frequency
):
    """ACSweepSolution.at(k) reproduces the scalar ACSolution."""
    net = build_rlc_ladder(rails, inductors, decaps, esrs, load)
    engine = ACSweep(net)
    sweep = engine.solve(np.array([frequency]))
    point = sweep.at(0)
    reference = solve_ac(net, frequency)
    assert point.frequency_hz == frequency
    rtol = parity_rtol(engine.compiled, frequency)
    scale = max(
        max(abs(v) for v in reference.node_voltages.values()), 1e-12
    )
    for node, value in reference.node_voltages.items():
        assert abs(point.voltage(node) - value) <= rtol * scale
