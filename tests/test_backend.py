"""The pluggable array backend and its graceful degradation.

``REPRO_BACKEND=cupy`` / ``torch`` in an environment without those
libraries must fall back to numpy with exactly one warning per
process (per requested name), never an error — and solves routed
through the backend must produce the same numbers as plain numpy.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.backend import (
    BACKEND_ENV_VAR,
    _reset_backend_cache,
    active_backend,
    resolve_backend,
)
from repro.pdn.grid import GridPDN


def gpu_library_missing(name: str) -> bool:
    try:
        __import__(name)
    except ImportError:
        return True
    return False


@pytest.fixture(autouse=True)
def clean_backend_cache(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    _reset_backend_cache()
    yield
    _reset_backend_cache()


def test_default_backend_is_numpy():
    backend = active_backend()
    assert backend.name == "numpy"
    assert backend.requested == "numpy"
    assert backend.xp is np
    assert not backend.is_gpu


def test_unknown_backend_is_rejected():
    with pytest.raises(ConfigError):
        resolve_backend("fortran")


def test_numpy_transforms_round_trip():
    backend = resolve_backend("numpy")
    field = np.random.default_rng(0).standard_normal((2, 4, 6))
    hat = backend.dctn(field, axes=(1, 2))
    assert np.allclose(backend.idctn(hat, axes=(1, 2)), field, atol=1e-12)


@pytest.mark.parametrize("name", ["cupy", "torch"])
def test_missing_gpu_backend_degrades_with_single_warning(
    name, monkeypatch
):
    if not gpu_library_missing(name):
        pytest.skip(f"{name} is importable in this environment")
    monkeypatch.setenv(BACKEND_ENV_VAR, name)
    with pytest.warns(RuntimeWarning, match=name) as record:
        backend = active_backend()
    assert backend.name == "numpy"
    assert backend.requested == name
    assert len(record) == 1
    # Cached: the second resolution is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = active_backend()
    assert again is backend


def test_env_selection_is_case_insensitive(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "NumPy")
    assert active_backend().name == "numpy"


@pytest.mark.parametrize("name", ["cupy", "torch"])
def test_solves_are_identical_after_fallback(name, monkeypatch):
    """A structured solve under a missing GPU backend matches numpy."""
    if not gpu_library_missing(name):
        pytest.skip(f"{name} is importable in this environment")

    def build() -> GridPDN:
        grid = GridPDN(1e-2, 1e-2, 1e-2, nx=6, ny=6, engine="structured")
        grid.set_sink_array(
            np.random.default_rng(3).random((6, 6))
        )
        grid.add_source("s0", 0.0, 0.0, 1.0, 1e-3)
        grid.add_source("s1", 1.0, 1.0, 1.0, 1e-3)
        return grid

    reference = build().solve().voltage_map
    monkeypatch.setenv(BACKEND_ENV_VAR, name)
    _reset_backend_cache()
    with pytest.warns(RuntimeWarning, match=name):
        fallback = build().solve().voltage_map
    assert np.array_equal(reference, fallback)
