"""Dataset tests (Fig. 1 and Fig. 2 reconstructions)."""

from __future__ import annotations

import pytest

from repro.datasets.hpc_demand import (
    CHIPS,
    SERVERS,
    DemandPoint,
    chips,
    demand_envelope,
    servers,
)
from repro.datasets.scaling_trends import (
    PACKAGING_TREND,
    POWER_TREND,
    REFERENCE_DIE_AREA_MM2,
    current_demand_series,
    feature_size_series,
    ppdn_resistance_series,
    trend_summary,
)
from repro.errors import DatasetError


class TestHPCDemand:
    def test_chips_nonempty(self):
        assert len(CHIPS) >= 8

    def test_servers_nonempty(self):
        assert len(SERVERS) >= 5

    def test_kinds(self):
        assert all(p.kind == "chip" for p in CHIPS)
        assert all(p.kind == "server" for p in SERVERS)

    def test_all_have_sources(self):
        for point in CHIPS + SERVERS:
            assert point.source

    def test_chips_sorted_by_year(self):
        years = [p.year for p in chips()]
        assert years == sorted(years)

    def test_servers_sorted_by_year(self):
        years = [p.year for p in servers()]
        assert years == sorted(years)

    def test_envelope_chip_power(self):
        env = demand_envelope()
        # Fig. 1: chips rapidly approaching 1 kW.
        assert 500.0 <= env["max_chip_power_w"] <= 1200.0

    def test_envelope_server_power(self):
        env = demand_envelope()
        # Fig. 1: servers approaching 20 kW.
        assert env["max_server_power_w"] == pytest.approx(20000.0)

    def test_envelope_density(self):
        env = demand_envelope()
        assert 0.7 <= env["max_current_density_a_per_mm2"] <= 1.3

    def test_efficiency_range_below_90(self):
        env = demand_envelope()
        # Fig. 1's point: today's delivery is 75-85% efficient.
        assert env["max_delivery_efficiency"] < 0.90
        assert env["min_delivery_efficiency"] > 0.70

    def test_validation_kind(self):
        with pytest.raises(DatasetError):
            DemandPoint("x", 2020, "rack", 100.0, 0.1, 0.8, "s")

    def test_validation_power(self):
        with pytest.raises(DatasetError):
            DemandPoint("x", 2020, "chip", -1.0, 0.1, 0.8, "s")

    def test_validation_efficiency(self):
        with pytest.raises(DatasetError):
            DemandPoint("x", 2020, "chip", 100.0, 0.1, 1.2, "s")


class TestScalingTrends:
    def test_current_series_monotonic(self):
        values = [v for _y, v in current_demand_series()]
        assert values == sorted(values)

    def test_feature_series_monotonic_decreasing(self):
        values = [v for _y, v in feature_size_series()]
        assert values == sorted(values, reverse=True)

    def test_growth_orders_of_magnitude(self):
        summary = trend_summary()
        assert summary["current_growth_x"] > 100.0

    def test_feature_reduction_about_4x(self):
        # The paper/Iyer: only ~4x over the same decades.
        assert trend_summary()["feature_reduction_x"] == pytest.approx(
            4.0, rel=0.01
        )

    def test_die_current_formula(self):
        point = POWER_TREND[-1]
        expected = (
            point.power_density_w_per_mm2
            * REFERENCE_DIE_AREA_MM2
            / point.core_voltage_v
        )
        assert point.die_current_a == pytest.approx(expected)

    def test_ppdn_conductance_normalized(self):
        series = ppdn_resistance_series()
        assert series[0][1] == pytest.approx(1.0)
        assert series[-1][1] == pytest.approx(4.0, rel=0.01)

    def test_eras_cover_five_decades(self):
        summary = trend_summary()
        assert summary["last_year"] - summary["first_year"] >= 45

    def test_packaging_eras_labeled(self):
        assert PACKAGING_TREND[0].technology.startswith("wirebond")
        assert PACKAGING_TREND[-1].technology == "micro-bump"

    def test_mismatch_between_trends_is_the_papers_point(self):
        # I^2 grows ~million-fold while R improves ~4x: the gap that
        # motivates vertical power delivery.
        summary = trend_summary()
        gap = summary["current_growth_x"] ** 2 / summary["feature_reduction_x"]
        assert gap > 1e4
