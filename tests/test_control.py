"""Droop control and regulator load-sharing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converters.control import (
    MismatchSharingResult,
    VoltageRegulator,
    droop_sharing,
    sharing_with_mismatch,
)
from repro.errors import ConfigError


class TestVoltageRegulator:
    def test_static_droop_line(self):
        reg = VoltageRegulator(v_ref_v=1.0, droop_ohm=1e-3)
        assert reg.output_voltage_v(0.0) == pytest.approx(1.0)
        assert reg.output_voltage_v(20.0) == pytest.approx(0.98)

    def test_load_regulation_fraction(self):
        reg = VoltageRegulator(v_ref_v=1.0, droop_ohm=1e-3)
        assert reg.load_regulation_fraction(30.0) == pytest.approx(0.03)

    def test_closed_loop_low_frequency_suppression(self):
        reg = VoltageRegulator()
        z_low = abs(reg.closed_loop_impedance_ohm(1e3))
        z_open = abs(reg.open_loop_impedance_ohm(1e3))
        # Below crossover the loop gain crushes the impedance.
        assert z_low < z_open / 100

    def test_closed_loop_approaches_open_above_crossover(self):
        reg = VoltageRegulator(bandwidth_hz=100e3)
        f = 10e6
        z_cl = abs(reg.closed_loop_impedance_ohm(f))
        z_ol = abs(reg.open_loop_impedance_ohm(f))
        assert z_cl == pytest.approx(z_ol, rel=0.02)

    def test_higher_bandwidth_less_deviation(self):
        slow = VoltageRegulator(bandwidth_hz=100e3)
        fast = VoltageRegulator(bandwidth_hz=2e6)
        assert fast.worst_case_deviation_v(10.0) <= (
            slow.worst_case_deviation_v(10.0) + 1e-12
        )

    def test_deviation_scales_with_step(self):
        reg = VoltageRegulator()
        assert reg.worst_case_deviation_v(20.0) == pytest.approx(
            2 * reg.worst_case_deviation_v(10.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            VoltageRegulator(droop_ohm=0.0)
        with pytest.raises(ConfigError):
            VoltageRegulator(bandwidth_hz=0.0)
        with pytest.raises(ConfigError):
            VoltageRegulator().output_voltage_v(-1.0)


class TestDroopSharing:
    def test_identical_units_share_equally(self):
        currents, v_bus = droop_sharing(
            [1.0, 1.0, 1.0, 1.0], [1e-3] * 4, 80.0
        )
        assert np.allclose(currents, 20.0)
        assert v_bus == pytest.approx(0.98)

    def test_currents_sum_to_load(self):
        currents, _ = droop_sharing(
            [1.002, 0.999, 1.001], [1e-3, 2e-3, 1.5e-3], 50.0
        )
        assert currents.sum() == pytest.approx(50.0)

    def test_higher_setpoint_carries_more(self):
        currents, _ = droop_sharing([1.005, 1.0], [1e-3, 1e-3], 40.0)
        assert currents[0] > currents[1]

    def test_setpoint_mismatch_spread_rule(self):
        # dI = dVref / r_droop for two units.
        delta_v = 2e-3
        r = 1e-3
        currents, _ = droop_sharing([1.0 + delta_v, 1.0], [r, r], 40.0)
        assert currents[0] - currents[1] == pytest.approx(delta_v / r)

    def test_stiffer_droop_amplifies_mismatch(self):
        soft = droop_sharing([1.002, 1.0], [2e-3, 2e-3], 40.0)[0]
        stiff = droop_sharing([1.002, 1.0], [0.5e-3, 0.5e-3], 40.0)[0]
        assert (stiff[0] - stiff[1]) > (soft[0] - soft[1])

    def test_reverse_current_possible_at_light_load(self):
        currents, _ = droop_sharing([1.01, 1.0], [1e-3, 1e-3], 1.0)
        assert currents.min() < 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            droop_sharing([1.0], [1e-3, 1e-3], 10.0)
        with pytest.raises(ConfigError):
            droop_sharing([1.0, 1.0], [0.0, 1e-3], 10.0)


class TestMismatchMonteCarlo:
    def test_deterministic(self):
        a = sharing_with_mismatch(48, 1000.0)
        b = sharing_with_mismatch(48, 1000.0)
        assert a == b

    def test_spread_tracks_sigma_over_droop(self):
        result = sharing_with_mismatch(
            8, 160.0, droop_ohm=1e-3, setpoint_sigma_v=2e-3, samples=300
        )
        # Expected spread ~ few x sigma/droop = few x 2 A.
        assert 2.0 < result.mean_spread_a < 12.0

    def test_tighter_trim_tighter_sharing(self):
        loose = sharing_with_mismatch(8, 160.0, setpoint_sigma_v=5e-3)
        tight = sharing_with_mismatch(8, 160.0, setpoint_sigma_v=0.5e-3)
        assert tight.mean_spread_a < loose.mean_spread_a

    def test_result_type(self):
        assert isinstance(
            sharing_with_mismatch(4, 80.0), MismatchSharingResult
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            sharing_with_mismatch(1, 100.0)
