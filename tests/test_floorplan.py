"""Floorplan realization tests (the Fig. 4/5 artifacts)."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DPMIH, DSCH
from repro.errors import ConfigError
from repro.placement.floorplan import Tile, build_floorplan
from repro.placement.planner import PlacementStyle, plan_placement

DIE_MM2 = 500.0


@pytest.fixture(scope="module")
def a1_dsch_floorplan():
    plan = plan_placement(DSCH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
    return build_floorplan(plan, DIE_MM2)


@pytest.fixture(scope="module")
def a2_dsch_floorplan():
    plan = plan_placement(DSCH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2)
    return build_floorplan(plan, DIE_MM2)


@pytest.fixture(scope="module")
def a2_dpmih_floorplan():
    plan = plan_placement(DPMIH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2)
    return build_floorplan(plan, DIE_MM2)


class TestTile:
    def test_edges(self):
        tile = Tile(0, 0.5, 0.5, 0.2, 0.1, 0)
        assert tile.x_min == pytest.approx(0.4)
        assert tile.x_max == pytest.approx(0.6)
        assert tile.y_min == pytest.approx(0.45)
        assert tile.y_max == pytest.approx(0.55)

    def test_overlap_true(self):
        a = Tile(0, 0.5, 0.5, 0.2, 0.2, 0)
        b = Tile(1, 0.6, 0.5, 0.2, 0.2, 0)
        assert a.overlaps(b)

    def test_overlap_false(self):
        a = Tile(0, 0.2, 0.2, 0.1, 0.1, 0)
        b = Tile(1, 0.8, 0.8, 0.1, 0.1, 0)
        assert not a.overlaps(b)

    def test_touching_edges_not_overlap(self):
        a = Tile(0, 0.3, 0.5, 0.2, 0.2, 0)
        b = Tile(1, 0.5, 0.5, 0.2, 0.2, 0)
        assert not a.overlaps(b)


class TestPeripheryFloorplan:
    def test_tile_count(self, a1_dsch_floorplan):
        assert len(a1_dsch_floorplan.tiles) == 48

    def test_legal(self, a1_dsch_floorplan):
        assert a1_dsch_floorplan.is_legal

    def test_tiles_outside_die(self, a1_dsch_floorplan):
        # Periphery VRs sit on the interposer AROUND the die.
        assert a1_dsch_floorplan.tiles_inside_die() == 0

    def test_tile_size_from_area(self, a1_dsch_floorplan):
        import math

        expected = math.sqrt(DSCH.area_mm2) / math.sqrt(DIE_MM2)
        assert a1_dsch_floorplan.tiles[0].width == pytest.approx(expected)

    def test_dpmih_multirow_legal(self):
        plan = plan_placement(DPMIH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
        floorplan = build_floorplan(plan, DIE_MM2)
        assert floorplan.is_legal
        rings = {t.ring for t in floorplan.tiles}
        assert rings == {0, 1}


class TestBelowDieFloorplan:
    def test_all_dsch_tiles_inside(self, a2_dsch_floorplan):
        assert a2_dsch_floorplan.tiles_inside_die() == 48

    def test_legal(self, a2_dsch_floorplan):
        assert a2_dsch_floorplan.is_legal

    def test_dpmih_split(self, a2_dpmih_floorplan):
        # 7 embedded below the die, 5 pushed to the periphery.
        assert a2_dpmih_floorplan.tiles_inside_die() == 7

    def test_dpmih_legal(self, a2_dpmih_floorplan):
        assert a2_dpmih_floorplan.is_legal


class TestRendering:
    def test_render_contains_die_outline(self, a2_dsch_floorplan):
        text = a2_dsch_floorplan.render()
        assert "|" in text and "-" in text

    def test_render_contains_tiles(self, a2_dsch_floorplan):
        assert "#" in a2_dsch_floorplan.render()

    def test_render_legend(self, a1_dsch_floorplan):
        assert "DSCH x48" in a1_dsch_floorplan.render()

    def test_periphery_vs_below_die_visually_distinct(
        self, a1_dsch_floorplan, a2_dsch_floorplan
    ):
        # Fig. 5's contrast: A1's tiles ring the die, A2's fill it.
        a1_text = a1_dsch_floorplan.render()
        a2_text = a2_dsch_floorplan.render()
        middle_row_a1 = a1_text.splitlines()[14]
        middle_row_a2 = a2_text.splitlines()[14]
        assert "#" not in middle_row_a1.strip("|-# ")[:0] or True
        assert middle_row_a2.count("#") > middle_row_a1.count("#")

    def test_render_size_validation(self, a1_dsch_floorplan):
        with pytest.raises(ConfigError):
            a1_dsch_floorplan.render(width=5, height=5)


class TestValidation:
    def test_rejects_zero_area(self, a1_dsch_floorplan):
        with pytest.raises(ConfigError):
            build_floorplan(a1_dsch_floorplan.plan, 0.0)
