"""Property-based tests of the factor-once grid transient engine.

Three pillars:

* **Oracle parity** — a 1xN chain mesh is electrically identical to an
  N-stage lumped ladder, so :class:`GridTransientPDN` must reproduce
  :class:`PDNTransient` (an independent state-space integrator) to
  1e-6 relative over randomized R/L/C ladders.
* **Engine equivalence** — the DCT-diagonalized structured engine and
  the LU-factorized engine solve the same discretized system; their
  traces must agree to 1e-8.
* **DC limit** — a constant waveform must hold the mesh exactly at the
  :meth:`GridPDN.solve` operating point (capacitors open, inductors
  short).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import chips, load_step_trace, node_current_waveform
from repro.errors import ConfigError, DatasetError
from repro.pdn import (
    GridPDN,
    GridTransientPDN,
    PDNStage,
    PDNTransient,
    PowerMap,
    hotspot_trajectory,
)


def chain_pair(n, r_src, l_src, r_edge, l_edge, caps, esrs, volt=1.0):
    """An n-stage lumped ladder and its 1xN chain-mesh twin.

    Ladder stage 1 is the mesh's VR branch (rout + source inductance);
    stages 2..n are the uniform chain edges; stage k's C/ESR shunt is
    node k-1's decap.
    """
    stages = [PDNStage("s1", r_src, l_src, caps[0], esrs[0])]
    for k in range(1, n):
        stages.append(PDNStage(f"s{k + 1}", r_edge, l_edge, caps[k], esrs[k]))
    oracle = PDNTransient(volt, stages)

    mesh = GridTransientPDN(
        1.0, 1.0, r_edge * (n - 1), nx=n, ny=1, edge_inductance_x_h=l_edge
    )
    mesh.add_source("vr", 0.0, 0.0, volt, r_src, inductance_h=l_src)
    mesh.set_decap_map(
        np.asarray(caps).reshape(1, n), np.asarray(esrs).reshape(1, n), 0.0
    )
    sink = np.zeros((1, n))
    sink[0, -1] = 1.0
    mesh.set_sink_array(sink)
    return oracle, mesh


@st.composite
def ladders(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    r_src = draw(st.floats(min_value=0.1, max_value=2.0))
    l_src = draw(st.floats(min_value=2e-7, max_value=5e-6))
    r_edge = draw(st.floats(min_value=0.2, max_value=3.0))
    l_edge = draw(st.floats(min_value=2e-7, max_value=5e-6))
    caps = [
        draw(st.floats(min_value=5e-7, max_value=5e-6)) for _ in range(n)
    ]
    esrs = [
        draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(n)
    ]
    return n, r_src, l_src, r_edge, l_edge, caps, esrs


class TestOracleParity:
    """Mesh chain vs the independent lumped state-space integrator."""

    @given(params=ladders())
    @settings(max_examples=20, deadline=None)
    def test_chain_matches_lumped_ladder(self, params):
        n, r_src, l_src, r_edge, l_edge, caps, esrs = params
        oracle, mesh = chain_pair(
            n, r_src, l_src, r_edge, l_edge, caps, esrs
        )
        # dt resolves the fastest admissible branch mode (~0.05 esr*C
        # at the strategy corner): trapezoidal error is O((rate*dt)^2),
        # and this step size keeps the worst corner ~2e-7, a 5x margin
        # under the 1e-6 bound.
        dt, steps = 2.5e-10, 1024
        ref = oracle.simulate_step(
            0.05, 0.18, duration_s=steps * dt, dt_s=dt
        )
        res = mesh.simulate_step(
            0.05, 0.18, duration_s=steps * dt, dt_s=dt,
            probe_nodes=[(n - 1, 0)],
        )
        pol = ref.pol_voltage_v
        err = np.max(
            np.abs(res.probe_voltages_v[:, 0] - pol)
        ) / np.max(np.abs(pol))
        assert err <= 1e-6

    def test_droop_and_settle_match_oracle(self):
        caps = [2e-6, 1.5e-6, 3e-6, 1e-6]
        esrs = [0.5, 0.3, 0.8, 0.4]
        oracle, mesh = chain_pair(4, 0.8, 2e-6, 1.2, 1.5e-6, caps, esrs)
        dt, steps = 1e-9, 512
        ref = oracle.simulate_step(
            0.05, 0.18, duration_s=steps * dt, dt_s=dt
        )
        res = mesh.simulate_step(
            0.05, 0.18, duration_s=steps * dt, dt_s=dt,
            probe_nodes=[(3, 0)],
        )
        assert res.droop_v == pytest.approx(ref.droop_v, rel=1e-6)
        assert res.settle_time_s == pytest.approx(
            ref.settle_time_s, abs=2 * dt
        )


def mesh_fixture(engine: str) -> GridTransientPDN:
    pdn = GridTransientPDN(0.02, 0.02, 0.004, nx=12, ny=12, engine=engine)
    for i, (x, y) in enumerate([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)]):
        pdn.add_source(f"vr{i}", x, y, 1.0, 0.02, inductance_h=5e-12)
    pdn.connect_sources_with_ring_bus(0.005)
    pdn.set_sinks(PowerMap.hotspot_mixture(), 120.0)
    return pdn


class TestEngineEquivalence:
    """Structured (DCT + Woodbury) vs factorized (LU) engines."""

    def run_both(self, decap_density):
        results = []
        for engine in ("factorized", "structured"):
            pdn = mesh_fixture(engine)
            pdn.set_decap_density(decap_density, 0.2e-6, 2e-3, 1e-12)
            results.append(
                pdn.simulate_step(
                    60.0, 120.0, duration_s=1e-7, dt_s=1e-10,
                    probe_nodes=[(6, 6)],
                )
            )
        return results

    @given(
        density=st.floats(min_value=0.25, max_value=4.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_engines_agree(self, density):
        fact, struct = self.run_both(density)
        assert fact.engine == "factorized"
        assert struct.engine == "structured"
        scale = np.max(np.abs(fact.probe_voltages_v))
        probe_err = np.max(
            np.abs(fact.probe_voltages_v - struct.probe_voltages_v)
        ) / scale
        assert probe_err <= 1e-8
        assert np.max(np.abs(fact.droop_map - struct.droop_map)) <= 1e-8

    def test_nonuniform_decap_map_agrees(self):
        # Mostly uniform with a handful of hotspot allocations — the
        # sparse-deviation regime the rank-s Woodbury correction covers.
        rng = np.random.default_rng(3)
        density = np.ones((12, 12))
        rows = rng.choice(144, size=10, replace=False)
        density.ravel()[rows] = 1.0 + rng.random(10) * 3.0
        results = []
        for engine in ("factorized", "structured"):
            pdn = mesh_fixture(engine)
            pdn.set_decap_density(density, 0.2e-6, 2e-3, 1e-12)
            results.append(
                pdn.simulate_step(60.0, 120.0, duration_s=5e-8, dt_s=1e-10)
            )
        fact, struct = results
        assert np.max(np.abs(fact.v_min_map - struct.v_min_map)) <= 1e-8

    def test_dense_deviations_fall_back_under_auto(self):
        # A fully random decap map exceeds the Woodbury rank budget:
        # explicit 'structured' refuses, 'auto' falls back to the LU.
        from repro.pdn import StructuredSolveError

        rng = np.random.default_rng(5)
        density = 0.5 + rng.random((12, 12))
        strict = mesh_fixture("structured")
        strict.set_decap_density(density, 0.2e-6, 2e-3, 1e-12)
        with pytest.raises(StructuredSolveError):
            strict.simulate_step(60.0, 120.0, duration_s=1e-8, dt_s=1e-10)
        auto = mesh_fixture("auto")
        auto.set_decap_density(density, 0.2e-6, 2e-3, 1e-12)
        res = auto.simulate_step(60.0, 120.0, duration_s=1e-8, dt_s=1e-10)
        assert res.engine == "factorized"

    def test_auto_prefers_factorized_on_small_mesh(self):
        pdn = mesh_fixture("auto")
        pdn.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
        res = pdn.simulate_step(60.0, 120.0, duration_s=2e-8, dt_s=1e-10)
        assert res.engine == "factorized"


class TestDCLimit:
    """Constant drive holds the GridPDN.solve operating point."""

    def dc_pair(self):
        grid = GridPDN(0.02, 0.02, 0.004, nx=12, ny=12)
        for i, (x, y) in enumerate([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)]):
            grid.add_source(f"vr{i}", x, y, 1.0, 0.02)
        grid.connect_sources_with_ring_bus(0.005)
        grid.set_sinks(PowerMap.hotspot_mixture(), 120.0)
        tp = GridTransientPDN.from_grid(grid, source_inductance_h=5e-12)
        tp.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
        return grid, tp

    def test_initial_map_matches_dc_solve(self):
        grid, tp = self.dc_pair()
        sol = grid.solve()
        wave = np.repeat(grid._sink_map.ravel()[None, :], 64, axis=0)
        res = tp.simulate(wave, 1e-10)
        assert np.max(np.abs(res.v_pre_map - sol.voltage_map)) <= 1e-9

    def test_constant_load_does_not_drift(self):
        grid, tp = self.dc_pair()
        wave = np.repeat(grid._sink_map.ravel()[None, :], 64, axis=0)
        res = tp.simulate(wave, 1e-10)
        assert np.max(np.abs(res.v_min_map - res.v_pre_map)) <= 1e-9
        assert res.droop_v <= 1e-9

    def test_batched_traces_match_single_runs(self):
        grid, tp = self.dc_pair()
        base = grid._sink_map.ravel()
        rng = np.random.default_rng(11)
        waves = np.stack(
            [
                np.repeat(base[None, :], 32, axis=0)
                * (0.5 + rng.random(32))[:, None]
                for _ in range(4)
            ]
        )
        batch = tp.simulate_many(waves, 1e-10, probe_nodes=[(3, 4)])
        singles = [
            tp.simulate(w, 1e-10, probe_nodes=[(3, 4)]) for w in waves
        ]
        for b, s in zip(batch, singles):
            assert np.array_equal(b.probe_voltages_v, s.probe_voltages_v)
            assert b.droop_v == s.droop_v


class TestWaveformAdapters:
    """The dataset-trace and moving-hotspot drive-signal helpers."""

    def test_load_step_trace_shape_and_levels(self):
        chip = chips()[0]
        trace = load_step_trace(chip, samples=64, idle_fraction=0.25)
        full = chip.power_w / 1.0
        assert trace.shape == (64,)
        assert trace[0] == pytest.approx(0.25 * full)
        assert np.all(trace[1:] == full)

    def test_load_step_trace_rejects_servers(self):
        from repro.datasets import servers

        with pytest.raises(DatasetError):
            load_step_trace(servers()[0])

    def test_node_current_waveform_conserves_total(self):
        trace = np.array([10.0, 40.0, 40.0])
        profile = PowerMap.hotspot_mixture().cell_currents(6, 6, 1.0)
        wave = node_current_waveform(trace, profile)
        assert wave.shape == (3, 36)
        np.testing.assert_allclose(wave.sum(axis=1), trace)

    def test_trace_drives_the_mesh(self):
        chip = chips()[0]
        trace = load_step_trace(chip, samples=48)
        pdn = mesh_fixture("factorized")
        pdn.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
        profile = PowerMap.hotspot_mixture().cell_currents(12, 12, 1.0)
        res = pdn.simulate(node_current_waveform(trace, profile), 1e-10)
        assert res.droop_v > 0

    def test_hotspot_trajectory_frames(self):
        frames = hotspot_trajectory(
            [(0.2, 0.2), (0.8, 0.8)], steps=10, nx=8, ny=6,
            total_current_a=50.0,
        )
        assert frames.shape == (10, 6, 8)
        np.testing.assert_allclose(frames.sum(axis=(1, 2)), 50.0)
        # The hotspot actually moves: first and last frames differ.
        assert np.max(np.abs(frames[0] - frames[-1])) > 0

    def test_trajectory_drives_the_mesh(self):
        pdn = mesh_fixture("factorized")
        pdn.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
        frames = hotspot_trajectory(
            [(0.1, 0.5), (0.9, 0.5)], steps=32, nx=12, ny=12,
            total_current_a=120.0,
        )
        res = pdn.simulate(frames, 1e-10)
        assert res.droop_v > 0
        assert res.v_min_map.shape == (12, 12)

    def test_trajectory_validation(self):
        with pytest.raises(ConfigError):
            hotspot_trajectory([(0.5, 0.5)], 10, 4, 4, 1.0)
        with pytest.raises(ConfigError):
            hotspot_trajectory([(0.2, 0.2), (1.5, 0.5)], 10, 4, 4, 1.0)


class TestValidation:
    def test_rejects_single_node_grid(self):
        with pytest.raises(ConfigError):
            GridTransientPDN(1.0, 1.0, 1.0, nx=1, ny=1)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            GridTransientPDN(1.0, 1.0, 1.0, nx=4, ny=4, engine="magic")

    def test_simulate_requires_sources(self):
        pdn = GridTransientPDN(1.0, 1.0, 1.0, nx=4, ny=4)
        wave = np.zeros((4, 16))
        with pytest.raises(ConfigError):
            pdn.simulate(wave, 1e-9)

    def test_simulate_step_requires_sink_map(self):
        pdn = GridTransientPDN(1.0, 1.0, 1.0, nx=4, ny=4)
        pdn.add_source("vr", 0.5, 0.5, 1.0, 0.1)
        with pytest.raises(ConfigError):
            pdn.simulate_step(0.0, 10.0)

    def test_rejects_bad_waveform_shape(self):
        pdn = GridTransientPDN(1.0, 1.0, 1.0, nx=4, ny=4)
        pdn.add_source("vr", 0.5, 0.5, 1.0, 0.1)
        with pytest.raises(ConfigError):
            pdn.simulate(np.zeros((4, 7)), 1e-9)

    def test_from_grid_rejects_scaled_meshes(self):
        grid = GridPDN(0.02, 0.02, 0.004, nx=6, ny=6)
        grid.add_source("vr", 0.5, 0.5, 1.0, 0.02)
        grid.set_edge_resistance_scale(x_scale=np.full((6, 5), 1.1))
        with pytest.raises(ConfigError):
            GridTransientPDN.from_grid(grid)
