"""End-to-end integration tests: the full paper reproduction.

Each test corresponds to a sentence in the paper's abstract/Section IV.
These tests ARE the reproduction contract; EXPERIMENTS.md records the
same comparisons with numbers.
"""

from __future__ import annotations

import pytest

from repro import (
    DSCH,
    LossAnalyzer,
    SystemSpec,
    analyze_current_sharing,
    characterize_all,
    dual_stage_a3,
    fig7_claims,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.reporting.experiments import run_all


@pytest.fixture(scope="module")
def study():
    return characterize_all()


@pytest.fixture(scope="module")
def claims(study):
    return fig7_claims(study)


class TestAbstractClaims:
    def test_delivering_1kw_at_2a_per_mm2(self):
        spec = SystemSpec()
        assert spec.pol_power_w == 1000.0
        assert spec.current_density_a_per_mm2 == 2.0
        assert spec.die_area_mm2 == pytest.approx(500.0)

    def test_four_architectures_proposed(self, study):
        names = {r.architecture for r in study}
        assert names == {"A0", "A1", "A2", "A3@12V", "A3@6V"}

    def test_conclusion_efficiency_above_80pct_possible(self, study):
        best = min(
            r.breakdown.paper_loss_fraction
            for r in study
            if r.included and r.architecture != "A0"
        )
        assert best < 0.20  # ">80% overall efficiency is possible"


class TestSectionIVResults:
    def test_traditional_over_40pct_loss(self, claims):
        assert claims.a0_loss_pct > 40.0

    def test_proposed_promising_80pct(self, claims):
        assert claims.best_vertical_loss_pct < 20.0

    def test_loss_dominated_by_vr_and_horizontal(self, study):
        for row in study:
            if row.included:
                b = row.breakdown
                dominant = b.converter_loss_w + b.horizontal_loss_w
                assert dominant > 0.95 * b.total_loss_w

    def test_vertical_negligible_everywhere(self, study):
        for row in study:
            if row.included:
                assert row.breakdown.vertical_loss_w < 2.0  # watts

    def test_19x_and_7x_horizontal_reductions(self, claims):
        assert 14.0 <= claims.horizontal_reduction_a3_12v <= 24.0
        assert 5.0 <= claims.horizontal_reduction_a3_6v <= 9.0

    def test_3lhd_not_shown_in_fig7(self, study):
        shown = {
            (r.architecture, r.topology) for r in study if r.included
        }
        assert not any(topo == "3LHD" for _a, topo in shown)

    def test_conclusion_ppdn_vs_converter_split(self, study):
        """'All the proposed architectures ... exhibit power loss of
        <10% in PPDN and >10% in the converters.'"""
        for row in study:
            if row.included and row.architecture != "A0":
                b = row.breakdown
                assert b.ppdn_loss_w < 0.10 * b.spec.pol_power_w
                assert b.converter_loss_w > 0.10 * b.spec.pol_power_w


class TestCurrentLoadDistribution:
    def test_a1_16_to_27(self):
        result = analyze_current_sharing(single_stage_a1(), DSCH)
        assert 12.0 <= result.min_current_a <= 20.0
        assert 22.0 <= result.max_current_a <= 31.0

    def test_a2_10_to_93(self):
        result = analyze_current_sharing(single_stage_a2(), DSCH)
        assert 7.0 <= result.min_current_a <= 13.0
        assert 78.0 <= result.max_current_a <= 105.0

    def test_broader_range_in_a2(self):
        a1 = analyze_current_sharing(single_stage_a1(), DSCH)
        a2 = analyze_current_sharing(single_stage_a2(), DSCH)
        assert (a2.max_current_a - a2.min_current_a) > 4 * (
            a1.max_current_a - a1.min_current_a
        )


class TestFigure3Message:
    def test_interposer_regulation_saves_vs_pcb(self):
        analyzer = LossAnalyzer()
        a0 = analyzer.analyze(reference_a0(), DSCH)
        a1 = analyzer.analyze(single_stage_a1(), DSCH)
        assert a1.efficiency > a0.efficiency + 0.10


class TestDualStageTradeoff:
    def test_a3_cuts_horizontal_but_pays_conversion(self):
        analyzer = LossAnalyzer()
        a1 = analyzer.analyze(single_stage_a1(), DSCH)
        a3 = analyzer.analyze(dual_stage_a3(12.0), DSCH)
        assert a3.horizontal_loss_w < a1.horizontal_loss_w
        assert a3.converter_loss_w > a1.converter_loss_w
        assert a3.total_loss_w > a1.total_loss_w


class TestExperimentRegistry:
    def test_every_registered_claim_holds(self):
        failing = [r for r in run_all() if not r.holds]
        assert not failing, [
            f"{r.experiment}: {r.claim} -> {r.measured_value}"
            for r in failing
        ]
