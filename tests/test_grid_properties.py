"""Property-based tests of the 2-D grid PDN solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.grid import GridPDN
from repro.pdn.powermap import PowerMap

loads = st.floats(min_value=1.0, max_value=500.0)
sheets = st.floats(min_value=1e-4, max_value=1e-2)
sizes = st.integers(min_value=6, max_value=16)


def make_grid(n: int, sheet: float) -> GridPDN:
    return GridPDN(0.02, 0.02, sheet, nx=n, ny=n)


@given(load=loads, sheet=sheets, n=sizes)
@settings(max_examples=40, deadline=None)
def test_conservation_any_configuration(load, sheet, n):
    """Source currents always sum to the sink total."""
    grid = make_grid(n, sheet)
    grid.set_sinks(PowerMap.hotspot_mixture(), load)
    grid.add_source("a", 0.0, 0.5, 1.0, 1e-3)
    grid.add_source("b", 1.0, 0.5, 1.0, 1e-3)
    solution = grid.solve()
    assert solution.source_currents_a.sum() == pytest.approx(
        load, rel=1e-6
    )


@given(load=loads, n=sizes)
@settings(max_examples=40, deadline=None)
def test_mirror_symmetry(load, n):
    """A left-right symmetric configuration shares symmetrically."""
    grid = make_grid(n, 1e-3)
    grid.set_sinks(PowerMap.gaussian(center=(0.5, 0.5), sigma=0.15), load)
    grid.add_source("left", 0.0, 0.5, 1.0, 1e-3)
    grid.add_source("right", 1.0, 0.5, 1.0, 1e-3)
    solution = grid.solve()
    left, right = solution.source_currents_a
    assert left == pytest.approx(right, rel=1e-3)


@given(load=loads, sheet=sheets)
@settings(max_examples=40, deadline=None)
def test_losses_scale_quadratically_with_load(load, sheet):
    """Linear network: doubling the load quadruples lateral loss."""
    results = []
    for factor in (1.0, 2.0):
        grid = make_grid(10, sheet)
        grid.set_sinks(PowerMap.uniform(), load * factor)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        results.append(grid.solve().lateral_loss_w)
    assert results[1] == pytest.approx(4 * results[0], rel=1e-6)


@given(load=loads)
@settings(max_examples=30, deadline=None)
def test_adding_a_source_never_raises_total_loss(load):
    """More sources can only lower (or keep) the dissipation: the
    network is linear and the new source adds a parallel path at the
    same potential."""
    single = make_grid(12, 1e-3)
    single.set_sinks(PowerMap.uniform(), load)
    single.add_source("a", 0.0, 0.5, 1.0, 1e-3)
    loss_single = (
        single.solve().lateral_loss_w + single.solve().source_loss_w
    )

    double = make_grid(12, 1e-3)
    double.set_sinks(PowerMap.uniform(), load)
    double.add_source("a", 0.0, 0.5, 1.0, 1e-3)
    double.add_source("b", 1.0, 0.5, 1.0, 1e-3)
    solution = double.solve()
    loss_double = solution.lateral_loss_w + solution.source_loss_w
    assert loss_double <= loss_single * (1 + 1e-9)


@given(
    cx=st.floats(min_value=0.2, max_value=0.8),
    cy=st.floats(min_value=0.2, max_value=0.8),
)
@settings(max_examples=30, deadline=None)
def test_nearest_source_carries_most(cx, cy):
    """With four corner sources, the one nearest a sharp hotspot
    carries the largest share."""
    grid = make_grid(14, 1e-3)
    grid.set_sinks(PowerMap.gaussian(center=(cx, cy), sigma=0.06), 100.0)
    corners = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
    for k, (x, y) in enumerate(corners):
        grid.add_source(f"s{k}", x, y, 1.0, 1e-4)
    solution = grid.solve()
    distances = sorted(
        ((x - cx) ** 2 + (y - cy) ** 2, k)
        for k, (x, y) in enumerate(corners)
    )
    # Near-ties (hotspot close to the die center) have no defined
    # winner; only assert when one corner is strictly nearest.
    if distances[1][0] - distances[0][0] < 0.02:
        return
    nearest = distances[0][1]
    heaviest = int(np.argmax(solution.source_currents_a))
    assert nearest == heaviest


@given(load=loads, n=sizes)
@settings(max_examples=30, deadline=None)
def test_voltage_bounded_by_source_emf(load, n):
    grid = make_grid(n, 1e-3)
    grid.set_sinks(PowerMap.uniform(), load)
    grid.add_source("s", 0.3, 0.7, 1.0, 1e-3)
    solution = grid.solve()
    assert solution.voltage_map.max() <= 1.0 + 1e-9
    assert solution.voltage_map.min() <= 1.0
