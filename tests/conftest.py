"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.core.loss_analysis import LossAnalyzer


@pytest.fixture(scope="session")
def paper_spec() -> SystemSpec:
    """The paper's 1 kW / 1 V / 48 V / 2 A/mm² system."""
    return SystemSpec()


@pytest.fixture(scope="session")
def analyzer(paper_spec: SystemSpec) -> LossAnalyzer:
    """A loss analyzer with default (calibrated) parameters."""
    return LossAnalyzer(spec=paper_spec)
