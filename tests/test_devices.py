"""PowerSwitch / Inductor / Capacitor loss primitive tests."""

from __future__ import annotations

import pytest

from repro.converters.devices import Capacitor, Inductor, PowerSwitch
from repro.errors import ConfigError
from repro.materials import GAN_100V, SI_POWER_MOSFET


class TestPowerSwitch:
    def test_sized_for_hits_target_ron(self):
        switch = PowerSwitch.sized_for(2e-3)
        assert switch.technology.r_on_ohm == pytest.approx(2e-3)

    def test_conduction_loss(self):
        switch = PowerSwitch.sized_for(1e-3)
        assert switch.conduction_loss_w(10.0) == pytest.approx(0.1)

    def test_conduction_loss_duty_weighted(self):
        switch = PowerSwitch.sized_for(1e-3)
        assert switch.conduction_loss_w(10.0, duty=0.5) == pytest.approx(0.05)

    def test_conduction_rejects_bad_duty(self):
        with pytest.raises(ConfigError):
            PowerSwitch.sized_for(1e-3).conduction_loss_w(1.0, duty=1.5)

    def test_switching_loss_formula(self):
        switch = PowerSwitch(GAN_100V, transition_time_s=2e-9)
        loss = switch.switching_loss_w(48.0, 10.0, 1e6)
        assert loss == pytest.approx(48 * 10 * 2e-9 * 1e6)

    def test_soft_switched_waives_overlap(self):
        switch = PowerSwitch(GAN_100V, soft_switched=True)
        assert switch.switching_loss_w(48.0, 10.0, 1e6) == 0.0

    def test_charge_loss_grows_with_frequency(self):
        switch = PowerSwitch(GAN_100V)
        assert switch.charge_loss_w(48.0, 2e6) == pytest.approx(
            2 * switch.charge_loss_w(48.0, 1e6)
        )

    def test_gan_charge_loss_below_si(self):
        gan = PowerSwitch(GAN_100V.scaled(2e-3))
        si = PowerSwitch(SI_POWER_MOSFET.scaled(2e-3))
        assert gan.charge_loss_w(48.0, 1e6) < si.charge_loss_w(48.0, 1e6)

    def test_total_loss_sums_terms(self):
        switch = PowerSwitch(GAN_100V)
        total = switch.total_loss_w(5.0, 48.0, 5.0, 1e6, duty=0.5)
        parts = (
            switch.conduction_loss_w(5.0, 0.5)
            + switch.switching_loss_w(48.0, 5.0, 1e6)
            + switch.charge_loss_w(48.0, 1e6)
        )
        assert total == pytest.approx(parts)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigError):
            PowerSwitch(GAN_100V).charge_loss_w(48.0, 0.0)

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigError):
            PowerSwitch(GAN_100V).conduction_loss_w(-1.0)

    def test_rejects_zero_transition_time(self):
        with pytest.raises(ConfigError):
            PowerSwitch(GAN_100V, transition_time_s=0.0)


class TestInductor:
    def test_dcr_loss(self):
        inductor = Inductor(1e-6, dcr_ohm=1e-3, rated_current_a=50.0)
        assert inductor.conduction_loss_w(10.0) == pytest.approx(0.1)

    def test_rating_check(self):
        inductor = Inductor(1e-6, dcr_ohm=1e-3, rated_current_a=50.0)
        assert inductor.is_within_rating(50.0)
        assert not inductor.is_within_rating(51.0)

    def test_rejects_zero_inductance(self):
        with pytest.raises(ConfigError):
            Inductor(0.0, 1e-3, 10.0)

    def test_rejects_negative_dcr(self):
        with pytest.raises(ConfigError):
            Inductor(1e-6, -1e-3, 10.0)

    def test_rejects_negative_current_query(self):
        inductor = Inductor(1e-6, 1e-3, 10.0)
        with pytest.raises(ConfigError):
            inductor.conduction_loss_w(-1.0)


class TestCapacitor:
    def test_esr_loss(self):
        cap = Capacitor(10e-6, esr_ohm=2e-3)
        assert cap.conduction_loss_w(5.0) == pytest.approx(0.05)

    def test_zero_esr_lossless(self):
        assert Capacitor(10e-6).conduction_loss_w(5.0) == 0.0

    def test_rejects_zero_capacitance(self):
        with pytest.raises(ConfigError):
            Capacitor(0.0)

    def test_rejects_negative_esr(self):
        with pytest.raises(ConfigError):
            Capacitor(1e-6, esr_ohm=-1.0)
