"""Public API contract tests.

Everything a downstream user imports from the top-level package must
exist, be documented, and compose into the headline workflow without
touching internals.
"""

from __future__ import annotations

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        assert issubclass(repro.ConfigError, repro.ReproError)
        assert issubclass(repro.InfeasibleError, repro.ReproError)
        assert issubclass(repro.SolverError, repro.ReproError)
        assert issubclass(repro.CalibrationError, repro.ReproError)
        assert issubclass(repro.DatasetError, repro.ReproError)

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_catalog_is_immutable_tuple(self):
        assert isinstance(repro.CATALOG, tuple)
        assert isinstance(repro.ALL_ARCHITECTURES, tuple)
        assert isinstance(repro.TABLE_I, tuple)


class TestHeadlineWorkflow:
    """The README quickstart, as a test."""

    def test_quickstart_flow(self):
        spec = repro.SystemSpec()
        analyzer = repro.LossAnalyzer(spec)
        a0 = analyzer.analyze(repro.reference_a0(), repro.DSCH)
        a1 = analyzer.analyze(repro.single_stage_a1(), repro.DSCH)
        assert a0.paper_loss_fraction > a1.paper_loss_fraction

        claims = repro.fig7_claims(repro.characterize_all(spec=spec))
        assert claims.excluded_topologies == ("3LHD",)

    def test_run_all_experiments(self):
        from repro.reporting.experiments import run_all

        assert all(result.holds for result in run_all())

    def test_spec_factories_compose(self):
        spec = (
            repro.SystemSpec()
            .with_power(800.0)
            .with_density(1.6)
            .with_input_voltage(54.0)
        )
        assert spec.pol_power_w == 800.0
        assert spec.die_area_mm2 == pytest.approx(500.0)
        assert spec.conversion_ratio == pytest.approx(54.0)

    def test_architecture_lookup_matches_factories(self):
        assert repro.architecture("A1").name == repro.single_stage_a1().name
        assert (
            repro.architecture("A3@6V").intermediate_voltage_v
            == repro.dual_stage_a3(6.0).intermediate_voltage_v
        )

    def test_converter_lookup(self):
        assert repro.converter("DSCH") is repro.DSCH
        assert repro.converter("DPMIH") is repro.DPMIH
        assert repro.converter("3LHD") is repro.THREE_LEVEL_HYBRID_DICKSON

    def test_pdn_primitives_compose(self):
        net = repro.Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", 1e-3)
        net.add_load("l", "out", 10.0)
        result = repro.solve_dc(net)
        assert result.voltage("out") == pytest.approx(0.99)

    def test_grid_and_powermap_compose(self):
        grid = repro.GridPDN(0.02, 0.02, 1e-3, nx=8, ny=8)
        grid.set_sinks(repro.PowerMap.uniform(), 10.0)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.source_currents_a.sum() == pytest.approx(10.0)

    def test_sharing_and_utilization_compose(self):
        sharing = repro.analyze_current_sharing(
            repro.single_stage_a2(), repro.DSCH
        )
        assert sharing.mean_current_a == pytest.approx(1000 / 48, rel=0.01)
        report = repro.vertical_utilization(repro.single_stage_a2())
        assert report.all_within_caps
        density = repro.a0_die_area_requirement()
        assert density.required_die_area_mm2 == pytest.approx(1200.0, rel=0.01)


class TestFrozenSpecs:
    def test_system_spec_immutable(self):
        spec = repro.SystemSpec()
        with pytest.raises(AttributeError):
            spec.pol_power_w = 2000.0

    def test_converter_spec_immutable(self):
        with pytest.raises(AttributeError):
            repro.DSCH.max_load_a = 50.0

    def test_architecture_spec_immutable(self):
        arch = repro.single_stage_a1()
        with pytest.raises(AttributeError):
            arch.name = "A9"
