"""Switching waveform simulation tests (Fig. 6 behaviours)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converters.waveforms import (
    BuckWaveformSimulator,
    ChargePumpWaveformSimulator,
    WaveformResult,
)
from repro.errors import ConfigError


class TestBuckWaveforms:
    def make(self, v_in=12.0, v_out=1.0, f=1e6) -> BuckWaveformSimulator:
        return BuckWaveformSimulator(
            v_in_v=v_in,
            v_out_target_v=v_out,
            inductance_h=470e-9,
            capacitance_f=47e-6,
            frequency_hz=f,
            load_ohm=0.1,
        )

    def test_duty(self):
        assert self.make().duty == pytest.approx(1 / 12)

    def test_48v_duty_two_percent(self):
        sim = BuckWaveformSimulator(48.0, 1.0, 1e-6, 100e-6, 0.3e6, 0.05)
        assert sim.duty == pytest.approx(0.0208, rel=0.01)

    def test_steady_state_output_near_target(self):
        result = self.make().simulate(cycles=400, steps_per_cycle=200)
        mean = result.steady_state_mean("output_voltage_v")
        assert mean == pytest.approx(1.0, rel=0.05)

    def test_switch_node_levels(self):
        result = self.make().simulate(cycles=5)
        node = result.signal("switch_node_v")
        assert set(np.unique(node)).issubset({0.0, 12.0})

    def test_switch_node_duty_fraction(self):
        sim = self.make()
        result = sim.simulate(cycles=10, steps_per_cycle=600)
        node = result.signal("switch_node_v")
        high_fraction = float(np.mean(node > 0))
        assert high_fraction == pytest.approx(sim.duty, abs=0.01)

    def test_output_ripple_small(self):
        result = self.make().simulate(cycles=400, steps_per_cycle=200)
        ripple = result.steady_state_ripple("output_voltage_v")
        assert ripple < 0.05

    def test_inductor_current_tracks_load(self):
        result = self.make().simulate(cycles=400, steps_per_cycle=200)
        mean_il = result.steady_state_mean("inductor_current_a")
        assert mean_il == pytest.approx(10.0, rel=0.1)  # 1 V / 0.1 Ohm

    def test_rejects_step_up(self):
        with pytest.raises(ConfigError):
            BuckWaveformSimulator(1.0, 2.0, 1e-6, 1e-6, 1e6, 1.0)

    def test_rejects_insufficient_cycles(self):
        with pytest.raises(ConfigError):
            self.make().simulate(cycles=0)


class TestChargePumpWaveforms:
    def make(self, ratio=4, f=1e6) -> ChargePumpWaveformSimulator:
        return ChargePumpWaveformSimulator(
            v_in_v=48.0,
            ratio=ratio,
            fly_capacitance_f=10e-6,
            out_capacitance_f=50e-6,
            frequency_hz=f,
            load_ohm=2.0,
        )

    def test_ideal_output(self):
        assert self.make(ratio=4).ideal_output_v == pytest.approx(12.0)

    def test_steady_state_below_ideal(self):
        # Charge-sharing droop: loaded output must sit below V_in/n.
        result = self.make().simulate(cycles=300)
        mean = result.steady_state_mean("output_voltage_v")
        assert 0.8 * 12.0 < mean < 12.0

    def test_higher_frequency_less_droop(self):
        slow = self.make(f=0.2e6).simulate(cycles=200)
        fast = self.make(f=2e6).simulate(cycles=200)
        assert fast.steady_state_mean("output_voltage_v") > (
            slow.steady_state_mean("output_voltage_v")
        )

    def test_flying_cap_oscillates_between_phases(self):
        result = self.make().simulate(cycles=300)
        ripple = result.steady_state_ripple("flying_cap_v")
        assert ripple > 0.0

    def test_phase_signal_alternates(self):
        result = self.make().simulate(cycles=4, steps_per_cycle=100)
        phases = set(np.unique(result.signal("phase")))
        assert phases == {1.0, 2.0}

    def test_rejects_ratio_one(self):
        with pytest.raises(ConfigError):
            ChargePumpWaveformSimulator(48.0, 1, 1e-6, 1e-6, 1e6, 1.0)


class TestWaveformResult:
    def test_unknown_signal_rejected(self):
        result = WaveformResult(
            time_s=np.arange(4.0), signals={"a": np.ones(4)}
        )
        with pytest.raises(ConfigError):
            result.signal("b")

    def test_steady_state_fraction_validation(self):
        result = WaveformResult(
            time_s=np.arange(4.0), signals={"a": np.ones(4)}
        )
        with pytest.raises(ConfigError):
            result.steady_state_mean("a", fraction=0.0)

    def test_ripple_of_constant_is_zero(self):
        result = WaveformResult(
            time_s=np.arange(10.0), signals={"a": np.ones(10)}
        )
        assert result.steady_state_ripple("a") == 0.0
