"""Interconnect utilization and A0 density-limit tests."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.utilization import (
    a0_die_area_requirement,
    cu_pad_utilization_at_pol,
    vertical_utilization,
)
from repro.errors import ConfigError
from repro.pdn.interconnect import ADVANCED_CU_PAD, MICRO_BUMP


class TestVerticalUtilizationClaims:
    """Section IV: ~1% BGA, ~2% C4, ~10% TSV, <20% pads."""

    @pytest.fixture(scope="class")
    def report(self):
        return vertical_utilization(single_stage_a2())

    def test_bga_about_1pct(self, report):
        assert report.row("BGA").utilization == pytest.approx(0.013, abs=0.006)

    def test_c4_about_2pct(self, report):
        assert report.row("C4 bump").utilization == pytest.approx(
            0.022, abs=0.008
        )

    def test_tsv_about_10pct(self, report):
        assert report.row("TSV").utilization == pytest.approx(0.10, abs=0.03)

    def test_pads_below_20pct(self, report):
        assert report.row("advanced Cu pad").utilization < 0.20

    def test_all_within_caps(self, report):
        assert report.all_within_caps

    def test_a1_report_same_feed_utilizations(self):
        a1 = vertical_utilization(single_stage_a1())
        a2 = vertical_utilization(single_stage_a2())
        assert a1.row("BGA").utilization == a2.row("BGA").utilization

    def test_unknown_row_raises(self, report):
        with pytest.raises(ConfigError):
            report.row("wirebond")

    def test_explicit_input_current(self):
        report = vertical_utilization(
            single_stage_a2(), input_current_a=48.0
        )
        assert report.row("BGA").rail_current_a == 48.0

    def test_cu_pad_helper_matches_report(self, report):
        assert cu_pad_utilization_at_pol() == pytest.approx(
            report.row("advanced Cu pad").utilization
        )


class TestA0Utilization:
    def test_a0_report_uses_pol_current(self):
        report = vertical_utilization(reference_a0())
        assert report.row("BGA").rail_current_a == pytest.approx(1000.0)

    def test_a0_die_attach_over_capacity(self):
        # 1 kA through the 500 mm2 micro-bump field exceeds ratings:
        # utilization above 100% flags the infeasibility.
        report = vertical_utilization(reference_a0())
        assert report.row("u-bump").utilization > 1.0

    def test_a0_has_no_tsv_row(self):
        report = vertical_utilization(reference_a0())
        with pytest.raises(ConfigError):
            report.row("TSV")


class TestA0DensityLimit:
    """The 1200 mm2 / 0.8 A/mm2 reference-architecture claim."""

    def test_required_die_area(self):
        report = a0_die_area_requirement()
        assert report.required_die_area_mm2 == pytest.approx(1200.0, rel=0.01)

    def test_power_density_limit(self):
        report = a0_die_area_requirement()
        assert report.power_density_limit_a_per_mm2 == pytest.approx(
            0.83, abs=0.05
        )

    def test_not_feasible_at_spec_die(self):
        assert not a0_die_area_requirement().feasible_at_spec_die

    def test_binding_is_die_attach(self):
        assert a0_die_area_requirement().binding_technology == "u-bump"

    def test_bga_cap_covers_1ka(self):
        report = a0_die_area_requirement()
        assert report.bga_capacity_a >= 1000.0

    def test_c4_cap_covers_1ka(self):
        report = a0_die_area_requirement()
        assert report.c4_capacity_a >= 1000.0

    def test_cu_pads_would_lift_the_limit(self):
        # With advanced Cu-Cu pads as die attach, the required area
        # collapses - advanced bonding is what enables 2 A/mm2.
        report = a0_die_area_requirement(die_attach=ADVANCED_CU_PAD)
        assert report.required_die_area_mm2 < 200.0
        assert report.feasible_at_spec_die

    def test_scales_with_power(self):
        half = a0_die_area_requirement(SystemSpec().with_power(500.0))
        assert half.required_die_area_mm2 == pytest.approx(600.0, rel=0.01)

    def test_density_limit_independent_of_power(self):
        # Both current and area scale linearly: the density cap is a
        # technology constant (rating / (2 * pitch^2)).
        full = a0_die_area_requirement()
        half = a0_die_area_requirement(SystemSpec().with_power(500.0))
        assert half.power_density_limit_a_per_mm2 == pytest.approx(
            full.power_density_limit_a_per_mm2, rel=0.01
        )

    def test_micro_bump_default(self):
        report = a0_die_area_requirement(die_attach=MICRO_BUMP)
        assert report.binding_technology == "u-bump"
