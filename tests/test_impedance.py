"""PDN AC impedance analysis tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.impedance import (
    pdn_impedance,
    size_die_decap_for_target,
    target_impedance_ohm,
)
from repro.pdn.transient import PDNStage


def simple_stages(die_cap: float = 10e-6) -> list[PDNStage]:
    return [
        PDNStage("board", 0.2e-3, 10e-9, 2e-3, 0.2e-3),
        PDNStage("die", 0.05e-3, 50e-12, die_cap, 0.05e-3),
    ]


class TestTargetImpedance:
    def test_rule(self):
        # 1 V, 5% ripple, 500 A transient -> 0.1 mOhm.
        assert target_impedance_ohm(1.0, 0.05, 500.0) == pytest.approx(1e-4)

    def test_rejects_bad_ripple(self):
        with pytest.raises(ConfigError):
            target_impedance_ohm(1.0, 0.0, 100.0)

    def test_rejects_zero_current(self):
        with pytest.raises(ConfigError):
            target_impedance_ohm(1.0, 0.05, 0.0)


class TestImpedanceProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        return pdn_impedance(simple_stages())

    def test_low_frequency_plateau_is_resistive(self, profile):
        # At 1 kHz the caps dominate... actually the profile at the
        # lowest frequency approaches the DC series resistance.
        dc_resistance = 0.2e-3 + 0.05e-3
        assert profile.impedance_ohm[0] <= dc_resistance * 1.5

    def test_peak_above_dc(self, profile):
        assert profile.peak_impedance_ohm > profile.impedance_ohm[0]

    def test_peak_frequency_in_band(self, profile):
        assert 1e3 <= profile.peak_frequency_hz <= 1e9

    def test_high_frequency_settles_to_die_esr(self, profile):
        # The die decap is the last shunt element: far above the
        # anti-resonance the profile approaches its ESR (50 uOhm).
        assert profile.impedance_ohm[-1] == pytest.approx(0.05e-3, rel=0.2)

    def test_more_die_decap_lowers_peak(self):
        small = pdn_impedance(simple_stages(die_cap=1e-6))
        large = pdn_impedance(simple_stages(die_cap=100e-6))
        assert large.peak_impedance_ohm < small.peak_impedance_ohm

    def test_meets_target_true_for_generous_target(self, profile):
        assert profile.meets_target(profile.peak_impedance_ohm * 1.01)

    def test_meets_target_false_for_tight_target(self, profile):
        assert not profile.meets_target(profile.peak_impedance_ohm * 0.5)

    def test_violation_band(self, profile):
        target = profile.peak_impedance_ohm * 0.5
        band = profile.violation_band_hz(target)
        assert band is not None
        lo, hi = band
        assert lo <= profile.peak_frequency_hz <= hi

    def test_no_violation_band_when_passing(self, profile):
        target = profile.peak_impedance_ohm * 1.1
        assert profile.violation_band_hz(target) is None

    def test_custom_frequency_grid(self):
        freqs = np.logspace(4, 8, 50)
        profile = pdn_impedance(simple_stages(), frequencies_hz=freqs)
        assert len(profile.impedance_ohm) == 50

    def test_rejects_nonpositive_frequencies(self):
        with pytest.raises(ConfigError):
            pdn_impedance(simple_stages(), frequencies_hz=np.array([0.0, 1e6]))

    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigError):
            pdn_impedance([])


class TestAnalyticCrossChecks:
    def test_single_stage_resonance_location(self):
        """A single L-C stage anti-resonates near f = 1/(2*pi*sqrt(LC))
        when seen beyond the cap (series branch with source)."""
        stage = PDNStage("only", 0.05e-3, 1e-9, 1e-6, 0.0)
        freqs = np.logspace(5, 9, 2001)
        profile = pdn_impedance([stage], frequencies_hz=freqs)
        expected = 1.0 / (2 * math.pi * math.sqrt(1e-9 * 1e-6))
        assert profile.peak_frequency_hz == pytest.approx(expected, rel=0.05)

    def test_high_frequency_asymptote_is_cap_esr(self):
        """Far above resonance the die cap's ESR short dominates."""
        stage = PDNStage("only", 0.05e-3, 1e-9, 1e-6, 0.3e-3)
        freqs = np.logspace(9.5, 10.5, 50)
        profile = pdn_impedance([stage], frequencies_hz=freqs)
        assert profile.impedance_ohm[-1] == pytest.approx(0.3e-3, rel=0.02)


class TestArchitectureComparison:
    def test_interposer_regulation_flattens_low_mid_band(self):
        """The A1/A2-style short PDN sits well below the A0-style
        board-regulated ladder through the low/mid band (the die-cap
        anti-resonance around tens of MHz is set by the die stage and
        is common to both)."""
        board_style = [
            PDNStage("board", 0.2e-3, 10e-9, 2e-3, 0.2e-3),
            PDNStage("package", 0.1e-3, 0.5e-9, 200e-6, 0.3e-3),
            PDNStage("die", 0.05e-3, 20e-12, 2e-6, 0.05e-3),
        ]
        interposer_style = [
            PDNStage("interposer", 0.05e-3, 100e-12, 100e-6, 0.1e-3),
            PDNStage("die", 0.02e-3, 10e-12, 2e-6, 0.05e-3),
        ]
        freqs = np.logspace(3, 5.9, 120)  # 1 kHz .. ~800 kHz
        z_board = pdn_impedance(board_style, frequencies_hz=freqs)
        z_interposer = pdn_impedance(interposer_style, frequencies_hz=freqs)
        assert np.all(
            z_interposer.impedance_ohm <= z_board.impedance_ohm
        )
        # At DC-ish frequencies the gap is large (>3x).
        assert (
            z_interposer.impedance_ohm[0]
            < z_board.impedance_ohm[0] / 3.0
        )


class TestDecapSizing:
    def test_sizing_reaches_target(self):
        stages = simple_stages(die_cap=0.5e-6)
        profile = pdn_impedance(stages)
        target = profile.peak_impedance_ohm * 0.6
        rec = size_die_decap_for_target(stages, target)
        assert rec.meets_target
        assert rec.recommended_farad > rec.original_farad

    def test_sizing_noop_when_already_passing(self):
        stages = simple_stages(die_cap=10e-6)
        profile = pdn_impedance(stages)
        rec = size_die_decap_for_target(
            stages, profile.peak_impedance_ohm * 1.1
        )
        assert rec.meets_target
        assert rec.recommended_farad == rec.original_farad

    def test_sizing_reports_failure_at_cap_limit(self):
        stages = simple_stages(die_cap=1e-6)
        rec = size_die_decap_for_target(stages, 1e-9, max_farad=10e-6)
        assert not rec.meets_target

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigError):
            size_die_decap_for_target(simple_stages(), 0.0)


class TestGridLadderCollapse:
    """A 1xN chain grid with uniform decap IS the analytic ladder.

    Each chain edge (R + jwL) followed by a node decap (C + ESR)
    matches one :class:`PDNStage`, and the source's output resistance
    plays the ladder's source impedance — so the grid-level AC engine
    must collapse onto both closed forms (`pdn_impedance`) and the
    compiled lumped path (`pdn_impedance_mna`) exactly.
    """

    N_STAGES = 4
    EDGE_R = 1.2e-3
    EDGE_L = 1e-10
    DECAP_C = 2e-6
    DECAP_ESR = 1.5e-3
    SOURCE_R = 1e-4

    @pytest.fixture(scope="class")
    def collapse(self):
        import numpy as np

        from repro.pdn.grid import GridACPDN

        nx = self.N_STAGES + 1
        stages = [
            PDNStage(
                f"seg{k}",
                self.EDGE_R,
                self.EDGE_L,
                self.DECAP_C,
                self.DECAP_ESR,
            )
            for k in range(self.N_STAGES)
        ]
        # width = nx - 1, height = 1, sheet = R  ==>  each x edge is
        # exactly R ohms; ny = 1 makes the mesh the ladder's chain.
        pdn = GridACPDN(
            width_m=float(nx - 1),
            height_m=1.0,
            sheet_ohm_sq=self.EDGE_R,
            nx=nx,
            ny=1,
            edge_inductance_x_h=self.EDGE_L,
        )
        c_map = np.full((1, nx), self.DECAP_C)
        c_map[0, 0] = 0.0  # the ladder has no shunt at the source node
        esr_map = np.full((1, nx), self.DECAP_ESR)
        esr_map[0, 0] = 0.0
        pdn.set_decap_map(c_map, esr_map, 0.0)
        pdn.add_source("vrm", 0.0, 0.0, 1.0, self.SOURCE_R)
        freqs = np.logspace(4, 9, 61)
        return pdn, stages, freqs

    def test_edge_resistance_matches_stage(self, collapse):
        pdn, _, _ = collapse
        assert pdn.edge_resistance_x_ohm == pytest.approx(self.EDGE_R)

    def test_die_node_matches_closed_form(self, collapse):
        import numpy as np

        pdn, stages, freqs = collapse
        grid_z = pdn.impedance_map(freqs).node_profile(self.N_STAGES, 0)
        ladder = pdn_impedance(
            stages, freqs, source_impedance_ohm=self.SOURCE_R
        )
        np.testing.assert_allclose(
            grid_z.impedance_ohm, ladder.impedance_ohm, rtol=1e-9
        )

    def test_die_node_matches_compiled_mna_ladder(self, collapse):
        import numpy as np

        from repro.pdn.impedance import pdn_impedance_mna

        pdn, stages, freqs = collapse
        grid_z = pdn.impedance_map(freqs).node_profile(self.N_STAGES, 0)
        mna = pdn_impedance_mna(
            stages, freqs, source_impedance_ohm=self.SOURCE_R
        )
        np.testing.assert_allclose(
            grid_z.impedance_ohm, mna.impedance_ohm, rtol=1e-9
        )

    def test_low_frequency_impedance_grows_along_chain(self, collapse):
        """At the resistive plateau, Z accumulates edge resistance
        with distance from the source."""
        pdn, _, freqs = collapse
        impedance = pdn.impedance_map(freqs)
        plateau = impedance.impedance_ohm[:, 0]
        assert all(
            later >= earlier * (1 - 1e-9)
            for earlier, later in zip(plateau, plateau[1:])
        )
        assert impedance.worst_node()[0] == self.N_STAGES


class TestGridDecapSizing:
    """`size_grid_decap_for_target` against the real mesh Z(f)."""

    def make_pdn(self):
        import numpy as np

        from repro.pdn.grid import GridACPDN

        # Deliberately inductance-dominated (large bump L, light mesh)
        # so the anti-resonant peak — the part decap can fix — is the
        # worst point, not the resistive plateau.
        pdn = GridACPDN(0.02, 0.02, 1e-4, nx=6, ny=6)
        pdn.set_decap_density(1.0, 50e-9, 2e-3, 1e-12)
        pdn.add_source("a", 0.0, 0.0, 1.0, 1e-4, 2e-9)
        pdn.add_source("b", 1.0, 1.0, 1.0, 1e-4, 2e-9)
        return pdn, np.logspace(4, 9, 61)

    def test_sizing_reaches_reachable_target(self):
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, freqs = self.make_pdn()
        baseline = pdn.impedance_map(freqs).peak_impedance_ohm
        original_total = pdn.total_decap_farad
        rec = size_grid_decap_for_target(
            pdn, baseline * 0.5, frequencies_hz=freqs
        )
        assert rec.meets_target
        assert rec.recommended_farad > rec.original_farad
        assert rec.original_farad == pytest.approx(original_total)
        # The search restores the caller's decap allocation.
        assert pdn.total_decap_farad == pytest.approx(original_total)

    def test_sizing_noop_when_already_passing(self):
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, freqs = self.make_pdn()
        baseline = pdn.impedance_map(freqs).peak_impedance_ohm
        rec = size_grid_decap_for_target(
            pdn, baseline * 1.5, frequencies_hz=freqs
        )
        assert rec.meets_target
        assert rec.recommended_farad == pytest.approx(rec.original_farad)

    def test_sizing_reports_failure_at_scale_limit(self):
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, freqs = self.make_pdn()
        rec = size_grid_decap_for_target(
            pdn, 1e-12, max_scale=4.0, frequencies_hz=freqs
        )
        assert not rec.meets_target

    def test_rejects_bad_target_and_missing_decap(self):
        import numpy as np

        from repro.pdn.grid import GridACPDN
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, _ = self.make_pdn()
        with pytest.raises(ConfigError):
            size_grid_decap_for_target(pdn, 0.0)
        bare = GridACPDN(0.02, 0.02, 1e-3, nx=4, ny=4)
        bare.add_source("a", 0.5, 0.5, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            size_grid_decap_for_target(bare, 1e-3)

    @staticmethod
    def _assert_snapshots_equal(before, after):
        import numpy as np

        state_before, rev_before = before
        state_after, rev_after = after
        assert rev_after == rev_before
        assert (state_after is None) == (state_before is None)
        if state_before is None:
            return
        assert len(state_after) == len(state_before)
        for part_before, part_after in zip(state_before, state_after):
            if isinstance(part_before, np.ndarray):
                assert np.array_equal(
                    part_after, part_before
                ), "decap array not restored bit-exactly"
            else:
                assert part_after == part_before

    def test_sizing_restores_map_representation_bit_exactly(self):
        # Regression: the sizer used to undo trials with
        # scale_decap(1/total_scale), a lossy float round-trip for a
        # "map" allocation; it must restore the snapshot instead.
        import numpy as np

        from repro.pdn.grid import GridACPDN
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn = GridACPDN(0.02, 0.02, 1e-4, nx=6, ny=6)
        rng = np.random.default_rng(7)
        cap = 50e-9 * (0.3 + rng.random((6, 6)))
        pdn.set_decap_map(cap, 2e-3, 1e-12)
        pdn.add_source("a", 0.0, 0.0, 1.0, 1e-4, 2e-9)
        freqs = np.logspace(4, 9, 31)
        before = pdn.decap_snapshot()
        baseline = pdn.impedance_map(freqs).peak_impedance_ohm
        rec = size_grid_decap_for_target(
            pdn, baseline * 0.5, frequencies_hz=freqs
        )
        assert rec.meets_target
        self._assert_snapshots_equal(before, pdn.decap_snapshot())
        # The restored grid reproduces the pre-search sweep exactly.
        assert pdn.impedance_map(freqs).peak_impedance_ohm == baseline

    def test_sizing_restores_state_when_sweep_raises(self):
        # Regression: a trial evaluation that raises mid-search used to
        # leave the grid holding the scaled trial allocation.
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, freqs = self.make_pdn()
        before = pdn.decap_snapshot()
        calls = {"n": 0}
        real_map = pdn.impedance_map

        def exploding_map(frequencies):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RuntimeError("solver blew up mid-search")
            return real_map(frequencies)

        pdn.impedance_map = exploding_map
        try:
            with pytest.raises(RuntimeError):
                size_grid_decap_for_target(
                    pdn, 1e-12, frequencies_hz=freqs
                )
        finally:
            del pdn.impedance_map
        self._assert_snapshots_equal(before, pdn.decap_snapshot())

    def test_sizing_failure_caps_recommendation_at_max_scale(self):
        from repro.pdn.impedance import size_grid_decap_for_target

        pdn, freqs = self.make_pdn()
        before = pdn.decap_snapshot()
        rec = size_grid_decap_for_target(
            pdn, 1e-12, max_scale=4.0, frequencies_hz=freqs
        )
        assert not rec.meets_target
        assert rec.recommended_farad == pytest.approx(
            rec.original_farad * 4.0
        )
        self._assert_snapshots_equal(before, pdn.decap_snapshot())
        assert pdn.total_decap_farad == pytest.approx(rec.original_farad)
