"""MNA DC solver tests against hand-solvable circuits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.mna import FactorizedPDN, solve_dc
from repro.pdn.network import Netlist


class TestVoltageDivider:
    def test_divider_voltage(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", "mid", 1.0)
        net.add_resistor("r2", "mid", net.GROUND, 1.0)
        result = solve_dc(net)
        assert result.voltage("mid") == pytest.approx(5.0)

    def test_divider_current(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", "mid", 3.0)
        net.add_resistor("r2", "mid", net.GROUND, 2.0)
        result = solve_dc(net)
        assert result.resistor_currents["r1"] == pytest.approx(2.0)

    def test_source_current_equals_branch_current(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", net.GROUND, 5.0)
        result = solve_dc(net)
        assert result.source_currents["v"] == pytest.approx(2.0)

    def test_loss_i2r(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", net.GROUND, 5.0)
        result = solve_dc(net)
        assert result.resistor_losses["r1"] == pytest.approx(20.0)


class TestCurrentSourceCircuits:
    def test_load_through_resistor(self):
        # 1 V source, 1 mOhm feed, 100 A load -> 0.9 V at the load.
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("feed", "in", "pol", 1e-3)
        net.add_load("cpu", "pol", 100.0)
        result = solve_dc(net)
        assert result.voltage("pol") == pytest.approx(0.9)

    def test_current_source_direction(self):
        # Source pushing current INTO a node raises its voltage.
        net = Netlist()
        net.add_voltage_source("v", "a", 0.0)
        net.add_resistor("r", "a", "b", 1.0)
        net.add_current_source("i", net.GROUND, "b", 2.0)
        result = solve_dc(net)
        assert result.voltage("b") == pytest.approx(2.0)

    def test_two_loads_superpose(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("feed", "in", "pol", 1e-3)
        net.add_load("l1", "pol", 40.0)
        net.add_load("l2", "pol", 60.0)
        result = solve_dc(net)
        assert result.voltage("pol") == pytest.approx(0.9)


class TestWheatstoneBridge:
    def test_balanced_bridge_carries_no_bridge_current(self):
        net = Netlist()
        net.add_voltage_source("v", "top", 10.0)
        net.add_resistor("ra", "top", "left", 100.0)
        net.add_resistor("rb", "top", "right", 100.0)
        net.add_resistor("rc", "left", net.GROUND, 100.0)
        net.add_resistor("rd", "right", net.GROUND, 100.0)
        net.add_resistor("bridge", "left", "right", 50.0)
        result = solve_dc(net)
        assert result.resistor_currents["bridge"] == pytest.approx(
            0.0, abs=1e-12
        )

    def test_unbalanced_bridge(self):
        net = Netlist()
        net.add_voltage_source("v", "top", 10.0)
        net.add_resistor("ra", "top", "left", 100.0)
        net.add_resistor("rb", "top", "right", 200.0)
        net.add_resistor("rc", "left", net.GROUND, 100.0)
        net.add_resistor("rd", "right", net.GROUND, 100.0)
        net.add_resistor("bridge", "left", "right", 50.0)
        result = solve_dc(net)
        assert abs(result.resistor_currents["bridge"]) > 1e-3


class TestMultipleSources:
    def test_two_equal_sources_share_symmetric_load(self):
        net = Netlist()
        net.add_source_with_impedance("s1", "bus", 1.0, 1e-3)
        net.add_source_with_impedance("s2", "bus", 1.0, 1e-3)
        net.add_load("load", "bus", 100.0)
        result = solve_dc(net)
        assert result.resistor_currents["s1.rout"] == pytest.approx(50.0)
        assert result.resistor_currents["s2.rout"] == pytest.approx(50.0)

    def test_asymmetric_impedance_shifts_share(self):
        net = Netlist()
        net.add_source_with_impedance("s1", "bus", 1.0, 1e-3)
        net.add_source_with_impedance("s2", "bus", 1.0, 3e-3)
        net.add_load("load", "bus", 100.0)
        result = solve_dc(net)
        assert result.resistor_currents["s1.rout"] == pytest.approx(75.0)
        assert result.resistor_currents["s2.rout"] == pytest.approx(25.0)

    def test_floating_voltage_source_between_nodes(self):
        # A source between two non-ground nodes (level shifter).
        net = Netlist()
        net.add_voltage_source("v1", "a", 5.0)
        net.add_voltage_source("v2", "b", 2.0, node_minus="a")
        net.add_resistor("r", "b", net.GROUND, 1.0)
        result = solve_dc(net)
        assert result.voltage("b") == pytest.approx(7.0)


class TestSolutionQueries:
    def test_loss_by_prefix(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("pcb.r1", "in", "m", 1e-3)
        net.add_resistor("pkg.r1", "m", net.GROUND, 1e-3)
        result = solve_dc(net)
        total = result.total_resistive_loss_w
        assert result.loss_by_prefix("pcb.") + result.loss_by_prefix(
            "pkg."
        ) == pytest.approx(total)

    def test_ground_voltage_is_zero(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", net.GROUND, 1.0)
        result = solve_dc(net)
        assert result.voltage("0") == 0.0

    def test_min_voltage(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r1", "in", "mid", 1.0)
        net.add_resistor("r2", "mid", net.GROUND, 1.0)
        result = solve_dc(net)
        assert result.min_voltage() == pytest.approx(0.5)


class TestFailureModes:
    def test_floating_current_source_network_fails(self):
        # A current source into a node connected only through itself.
        net = Netlist()
        net.add_voltage_source("v", "a", 1.0)
        net.add_resistor("r", "a", net.GROUND, 1.0)
        net.add_current_source("i", "float1", "float2", 1.0)
        net.add_resistor("rf", "float1", "float2", 1.0)
        with pytest.raises(SolverError):
            solve_dc(net)

    def test_power_balance_check_passes_on_valid_network(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 48.0)
        net.add_resistor("r", "in", "out", 0.1)
        net.add_load("l", "out", 10.0)
        result = solve_dc(net, check=True)
        assert result.voltage("out") == pytest.approx(47.0)


class TestSolveModified:
    """Woodbury-corrected low-rank modified solves."""

    def parallel_feeds(self) -> Netlist:
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("feed_a", "in", "pol", 1e-3)
        net.add_resistor("feed_b", "in", "pol", 2e-3)
        net.add_load("cpu", "pol", 30.0)
        return net

    def dual_source(self) -> Netlist:
        net = Netlist()
        net.add_source_with_impedance("vr0", "bus", 1.0, 1e-3)
        net.add_source_with_impedance("vr1", "bus", 1.0, 2e-3)
        net.add_load("cpu", "bus", 100.0)
        return net

    def test_no_modification_equals_solve(self):
        solver = FactorizedPDN(self.parallel_feeds())
        base = solver.solve()
        modified = solver.solve_modified()
        assert modified.node_voltage_array == pytest.approx(
            base.node_voltage_array
        )

    def test_removed_feed_matches_hand_calc(self):
        # Opening feed_a leaves 30 A through 2 mOhm: V_pol = 0.94 V.
        solver = FactorizedPDN(self.parallel_feeds())
        result = solver.solve_modified(remove_resistors=(0,))
        assert result.voltage("pol") == pytest.approx(0.94)
        assert result.resistor_currents["feed_a"] == 0.0
        assert result.resistor_losses["feed_a"] == 0.0
        assert result.resistor_currents["feed_b"] == pytest.approx(30.0)

    def test_disabled_source_matches_hand_calc(self):
        # With vr0 dead, vr1 alone carries 100 A through 2 mOhm.
        solver = FactorizedPDN(self.dual_source())
        result = solver.solve_modified(disable_sources=(0,))
        assert result.voltage("bus") == pytest.approx(0.8)
        assert result.source_currents["vr0.v"] == 0.0
        assert result.source_currents["vr1.v"] == pytest.approx(100.0)
        # The dead source's series resistor carries nothing and its
        # emf node floats to the bus voltage.
        assert result.resistor_currents["vr0.rout"] == pytest.approx(
            0.0, abs=1e-9
        )
        assert result.voltage(("vr0", "emf")) == pytest.approx(0.8)

    def test_methods_agree(self):
        solver = FactorizedPDN(self.dual_source())
        fast = solver.solve_modified(disable_sources=(1,), method="woodbury")
        oracle = solver.solve_modified(
            disable_sources=(1,), method="refactor"
        )
        assert fast.node_voltage_array == pytest.approx(
            oracle.node_voltage_array, rel=1e-9
        )

    def test_base_factorization_is_untouched(self):
        solver = FactorizedPDN(self.dual_source())
        before = solver.solve().node_voltage_array.copy()
        solver.solve_modified(disable_sources=(0,))
        after = solver.solve().node_voltage_array
        assert after == pytest.approx(before)

    def test_rejects_bad_indices(self):
        solver = FactorizedPDN(self.parallel_feeds())
        with pytest.raises(SolverError):
            solver.solve_modified(remove_resistors=(5,))
        with pytest.raises(SolverError):
            solver.solve_modified(disable_sources=(-1,))
        with pytest.raises(SolverError):
            solver.solve_modified(disable_sources=(0,), method="sideways")

    def test_disabling_only_source_fails(self):
        # No live source leaves the load unreferenced: the Woodbury
        # correction is ill-conditioned and the fallback must reject
        # the singular refactorization too.
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "pol", 1e-3)
        net.add_load("cpu", "pol", 10.0)
        solver = FactorizedPDN(net)
        with pytest.raises(SolverError):
            solver.solve_modified(disable_sources=(0,))

    def test_woodbury_method_raises_on_ill_conditioned(self):
        net = Netlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "pol", 1e-3)
        net.add_load("cpu", "pol", 10.0)
        solver = FactorizedPDN(net)
        with pytest.raises(SolverError):
            solver.solve_modified(disable_sources=(0,), method="woodbury")

    def test_scenario_overrides_compose(self):
        # Load/source overrides and modifications apply together.
        solver = FactorizedPDN(self.dual_source())
        result = solver.solve_modified(
            disable_sources=(0,),
            cs_amp=np.array([50.0]),
            vs_volt=np.array([1.0, 2.0]),
        )
        assert result.voltage("bus") == pytest.approx(2.0 - 50.0 * 2e-3)
