"""Parity: vectorized MNA fast path vs the retained reference assembly.

The production solver (:mod:`repro.pdn.mna`) stamps with numpy
concatenation and a cached SuperLU factorization; the oracle
(:mod:`repro.pdn.mna_reference`) stamps per element in Python exactly
like the original implementation.  On randomized netlists both must
agree to 1e-9 on every voltage, branch current, and loss — and both
must reject singular inputs with :class:`~repro.errors.SolverError`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.pdn.mna import solve_dc
from repro.pdn.mna_reference import solve_dc_reference
from repro.pdn.network import Netlist

# Ranges kept to ~5 decades of resistance so the random meshes stay
# well-conditioned: the two assemblies share the same physics but not
# the same element order / factorization, so agreement degrades as
# cond(A) * eps.
resistances = st.floats(
    min_value=1e-3, max_value=1e2, allow_nan=False, allow_infinity=False
)
currents = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
voltages = st.floats(
    min_value=0.5, max_value=48.0, allow_nan=False, allow_infinity=False
)


@st.composite
def random_netlists(draw) -> Netlist:
    """A random connected netlist: a resistor spine with random extra
    edges, loads, and one or two practical sources."""
    node_count = draw(st.integers(min_value=2, max_value=12))
    nodes = [f"n{i}" for i in range(node_count)]
    net = Netlist()

    # Spine guarantees connectivity of all named nodes.
    spine = draw(
        st.lists(
            resistances, min_size=node_count - 1, max_size=node_count - 1
        )
    )
    for i, r in enumerate(spine):
        net.add_resistor(f"spine[{i}]", nodes[i], nodes[i + 1], r)

    # Extra random edges (may create meshes / parallel paths).
    extra_count = draw(st.integers(min_value=0, max_value=8))
    for k in range(extra_count):
        a = draw(st.integers(min_value=0, max_value=node_count - 1))
        b = draw(st.integers(min_value=0, max_value=node_count - 1))
        if a == b:
            continue
        r = draw(resistances)
        net.add_resistor(f"extra[{k}]", nodes[a], nodes[b], r)

    # Ground ties so current sources have a return path.
    tie_count = draw(st.integers(min_value=1, max_value=3))
    for k in range(tie_count):
        a = draw(st.integers(min_value=0, max_value=node_count - 1))
        net.add_resistor(f"tie[{k}]", nodes[a], net.GROUND, draw(resistances))

    net.add_voltage_source("v0", nodes[0], draw(voltages))
    if draw(st.booleans()):
        net.add_source_with_impedance(
            "aux", nodes[node_count - 1], draw(voltages), draw(resistances)
        )

    load_count = draw(st.integers(min_value=0, max_value=5))
    for k in range(load_count):
        a = draw(st.integers(min_value=0, max_value=node_count - 1))
        net.add_load(f"load[{k}]", nodes[a], draw(currents))
    return net


@given(net=random_netlists())
@settings(max_examples=80, deadline=None)
def test_fast_path_matches_reference(net):
    fast = solve_dc(net)
    oracle = solve_dc_reference(net)

    # 1e-9 agreement relative to each quantity's magnitude: branches
    # carrying ~zero current only see factorization round-off.
    v_scale = max(1.0, max(abs(v) for v in oracle.node_voltages.values()))
    i_scale = max(
        1.0,
        max((abs(i) for i in oracle.resistor_currents.values()), default=0.0),
        max((abs(i) for i in oracle.source_currents.values()), default=0.0),
    )
    p_scale = max(1.0, oracle.total_resistive_loss_w)

    for node, expected in oracle.node_voltages.items():
        assert fast.node_voltages[node] == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * v_scale
        )
        assert fast.voltage(node) == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * v_scale
        )
    for name, expected in oracle.resistor_currents.items():
        assert fast.resistor_currents[name] == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * i_scale
        )
    for name, expected in oracle.resistor_losses.items():
        assert fast.resistor_losses[name] == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * p_scale
        )
    for name, expected in oracle.source_currents.items():
        assert fast.source_currents[name] == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * i_scale
        )
    assert fast.total_resistive_loss_w == pytest.approx(
        oracle.total_resistive_loss_w, rel=1e-9, abs=1e-9 * p_scale
    )


@given(net=random_netlists())
@settings(max_examples=40, deadline=None)
def test_compiled_input_matches_builder_input(net):
    """solve_dc accepts a pre-compiled netlist with identical results."""
    from_builder = solve_dc(net)
    from_compiled = solve_dc(net.compile())
    for name, expected in from_builder.resistor_currents.items():
        assert from_compiled.resistor_currents[name] == pytest.approx(
            expected, rel=1e-12, abs=1e-12
        )


@given(
    r_island=resistances,
    i_island=st.floats(min_value=0.01, max_value=100.0),
)
@settings(max_examples=25, deadline=None)
def test_singular_inputs_always_rejected_by_fast_path(r_island, i_island):
    """A floating island driven by a current source is singular: the
    fast path must raise SolverError for EVERY island resistance.

    (The retained reference only catches the singularity when SuperLU's
    pivoting happens to produce an exact zero or NaN — for some
    resistances it silently returns an arbitrary island potential.
    The fast path's factorization probe closes that hole, so it is
    deliberately stricter than the oracle here.)
    """

    def build() -> Netlist:
        net = Netlist()
        net.add_voltage_source("v", "a", 1.0)
        net.add_resistor("r", "a", net.GROUND, 1.0)
        net.add_resistor("island", "f1", "f2", r_island)
        net.add_current_source("i", "f1", "f2", i_island)
        return net

    with pytest.raises(SolverError):
        solve_dc(build())


def test_singular_input_rejected_by_both_on_zero_pivot():
    """For the exact-zero-pivot case both implementations raise."""
    def build() -> Netlist:
        net = Netlist()
        net.add_voltage_source("v", "a", 1.0)
        net.add_resistor("r", "a", net.GROUND, 1.0)
        net.add_resistor("island", "f1", "f2", 1.0)
        net.add_current_source("i", "f1", "f2", 1.0)
        return net

    with pytest.raises(SolverError):
        solve_dc(build())
    with pytest.raises(SolverError):
        solve_dc_reference(build())


def test_kcl_check_trips_on_corrupted_solution():
    """The vectorized _verify still detects KCL violations."""
    from repro.pdn import mna

    net = Netlist()
    net.add_voltage_source("v", "in", 1.0)
    net.add_resistor("r", "in", "out", 0.1)
    net.add_load("l", "out", 10.0)
    solver = mna.FactorizedPDN(net)
    solution = solver.solve(check=True)  # sanity: valid network passes

    # Corrupt the branch currents and re-verify: must trip.
    solution.resistor_current_array[:] += 1.0
    import numpy as np

    v_full = np.concatenate([solution.node_voltage_array, [0.0]])
    with pytest.raises(SolverError):
        mna._verify(
            solution,
            solver.compiled.cs_amp,
            solver.compiled.vs_volt,
            v_full,
        )
