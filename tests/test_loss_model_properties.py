"""Property-based tests of the quadratic loss model."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.converters.loss_model import QuadraticLossModel
from repro.errors import CalibrationError

fit_params = st.tuples(
    st.floats(min_value=0.5, max_value=48.0),   # v_out
    st.floats(min_value=1.0, max_value=50.0),   # i_peak
    st.floats(min_value=0.80, max_value=0.97),  # eta_peak
    st.floats(min_value=1.2, max_value=10.0),   # i_max / i_peak ratio
    st.floats(min_value=0.01, max_value=0.10),  # eta droop at full load
)


def try_fit(params) -> QuadraticLossModel | None:
    v_out, i_peak, eta_peak, ratio, droop = params
    try:
        return QuadraticLossModel.fit(
            v_out_v=v_out,
            i_peak_a=i_peak,
            eta_peak=eta_peak,
            i_max_a=i_peak * ratio,
            eta_max=eta_peak - droop,
        )
    except CalibrationError:
        return None


@given(fit_params)
@settings(max_examples=120, deadline=None)
def test_fit_interpolates_both_points(params):
    model = try_fit(params)
    assume(model is not None)
    v_out, i_peak, eta_peak, ratio, droop = params
    assert model.efficiency(i_peak) == pytest.approx(eta_peak, abs=1e-9)
    assert model.efficiency(i_peak * ratio) == pytest.approx(
        eta_peak - droop, abs=1e-9
    )


@given(fit_params)
@settings(max_examples=120, deadline=None)
def test_peak_is_global_maximum(params):
    model = try_fit(params)
    assume(model is not None)
    _, i_peak, _, ratio, _ = params
    eta_star = model.efficiency(i_peak)
    for fraction in (0.1, 0.3, 0.6, 0.9, 1.2, 1.6):
        current = min(i_peak * fraction * ratio, model.i_max_a)
        if current > 0:
            assert model.efficiency(current) <= eta_star + 1e-9


@given(fit_params)
@settings(max_examples=120, deadline=None)
def test_loss_is_convex_and_increasing(params):
    model = try_fit(params)
    assume(model is not None)
    currents = [model.i_max_a * f for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
    losses = [model.loss_w(i) for i in currents]
    assert losses == sorted(losses)
    # Convexity: midpoint loss below chord.
    for a, b in zip(currents, currents[2:]):
        mid = (a + b) / 2
        chord = (model.loss_w(a) + model.loss_w(b)) / 2
        assert model.loss_w(mid) <= chord + 1e-12


@given(fit_params, st.floats(min_value=1.5, max_value=20.0))
@settings(max_examples=80, deadline=None)
def test_voltage_reuse_preserves_eta_curve(params, v_new):
    model = try_fit(params)
    assume(model is not None)
    stage = model.reused_at_output_voltage(v_new)
    for fraction in (0.2, 0.5, 1.0):
        current = model.i_max_a * fraction
        assert stage.efficiency(current) == pytest.approx(
            model.efficiency(current), rel=1e-9
        )


@given(fit_params, st.integers(min_value=1, max_value=32))
@settings(max_examples=80, deadline=None)
def test_paralleled_preserves_per_unit_operating_point(params, count):
    model = try_fit(params)
    assume(model is not None)
    bank = model.paralleled(count)
    current = model.i_max_a * 0.8
    assert bank.loss_w(count * current) == pytest.approx(
        count * model.loss_w(current), rel=1e-9
    )
    assert bank.efficiency(count * current) == pytest.approx(
        model.efficiency(current), rel=1e-9
    )
