"""Reporting layer tests: ASCII plots, tables, figures, experiments."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.reporting.ascii_plot import bar_chart, scatter_plot, series_table
from repro.reporting.experiments import (
    EXPERIMENTS,
    run_all,
    run_experiment,
)
from repro.reporting.figures import (
    fig1_series,
    fig2_series,
    fig3_series,
    fig7_series,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig7,
)
from repro.reporting.tables import table_i_text, table_ii_text


class TestAsciiPlot:
    def test_bar_chart_contains_labels(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], unit="%")
        assert "a " in chart and "bb" in chart

    def test_bar_chart_peak_full_width(self):
        chart = bar_chart(["x", "y"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert "#" * 10 in lines[1]

    def test_bar_chart_title(self):
        chart = bar_chart(["x"], [1.0], title="T")
        assert chart.splitlines()[0] == "T"

    def test_bar_chart_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])

    def test_scatter_dimensions(self):
        plot = scatter_plot([1, 2, 3], [1, 4, 9], width=20, height=5)
        rows = [l for l in plot.splitlines() if l.startswith("|")]
        assert len(rows) == 5

    def test_scatter_log_axis(self):
        plot = scatter_plot([1, 10, 100], [1, 2, 3], log_x=True)
        assert "(log)" in plot

    def test_scatter_rejects_nonpositive_log(self):
        with pytest.raises(ConfigError):
            scatter_plot([0.0, 1.0], [1.0, 2.0], log_x=True)

    def test_scatter_markers(self):
        plot = scatter_plot([1, 2], [1, 2], markers=["c", "S"])
        assert "c" in plot and "S" in plot

    def test_series_table_alignment(self):
        table = series_table(["col", "x"], [["a", 1.0], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_series_table_row_width_validated(self):
        with pytest.raises(ConfigError):
            series_table(["a", "b"], [["only-one"]])


class TestTables:
    def test_table_i_lists_all_technologies(self):
        text = table_i_text()
        for name in ("BGA", "C4 bump", "TSV", "u-bump", "advanced Cu pad"):
            assert name in text

    def test_table_i_has_paper_pitches(self):
        text = table_i_text()
        for pitch in ("800", "200", "10", "60", "20"):
            assert pitch in text

    def test_table_ii_lists_converters(self):
        text = table_ii_text()
        for name in ("DPMIH", "DSCH", "3LHD"):
            assert name in text

    def test_table_ii_key_rows(self):
        text = table_ii_text()
        assert "Max load current" in text
        assert "VRs along die periphery" in text
        assert "91.5%" in text  # DSCH peak efficiency


class TestFigures:
    def test_fig1_series_structure(self):
        data = fig1_series()
        assert set(data) == {"chips", "servers"}
        assert all(len(entry) == 4 for entry in data["chips"])

    def test_fig2_series_structure(self):
        data = fig2_series()
        assert set(data) == {
            "current_demand_a",
            "feature_um",
            "relative_conductance",
        }

    def test_fig3_series_ordering(self):
        data = fig3_series()
        losses = [d["loss_pct"] for d in data]
        assert losses == sorted(losses, reverse=True)

    def test_fig7_series_counts(self):
        data = fig7_series()
        assert len(data) == 13
        assert sum(1 for d in data if d["excluded"]) == 4

    def test_fig7_series_components(self):
        data = fig7_series()
        included = [d for d in data if not d["excluded"]]
        for d in included:
            assert "VR" in d and "horizontal" in d and "total_pct" in d

    def test_render_fig1(self):
        text = render_fig1()
        assert "Fig.1" in text

    def test_render_fig2(self):
        text = render_fig2()
        assert "Die current" in text

    def test_render_fig3(self):
        text = render_fig3()
        assert "PCB" in text and "below-die" in text

    def test_render_fig7_includes_exclusions(self):
        text = render_fig7()
        assert "excluded: " in text
        assert "A0" in text


class TestExperiments:
    def test_registry_names(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig7",
            "utilization",
            "sharing",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            run_experiment("fig9")

    def test_fig2_experiment_holds(self):
        results = run_experiment("fig2")
        assert all(r.holds for r in results)

    def test_utilization_experiment_holds(self):
        results = run_experiment("utilization")
        assert all(r.holds for r in results)

    def test_all_claims_hold(self):
        # The headline assertion of the whole reproduction.
        results = run_all()
        failing = [r for r in results if not r.holds]
        assert not failing, failing

    def test_results_have_paper_and_measured(self):
        for r in run_experiment("fig1"):
            assert r.paper_value and r.measured_value
