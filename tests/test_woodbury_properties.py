"""Property-based parity of Woodbury-corrected modified solves.

``FactorizedPDN.solve_modified(method="woodbury")`` must reproduce an
explicit refactorization of the same modified system
(``method="refactor"``) to 1e-9 relative on every node voltage — on
random grids, random failed-source subsets, and random removed mesh
edges.  A removed-element scenario is additionally checked against a
from-scratch netlist that never contained the element (the semantic
oracle, not just the algebraic one).
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.pdn.grid import GridPDN
from repro.pdn.mna import FactorizedPDN
from repro.pdn.network import Netlist


def stays_powered(
    grid: GridPDN, removed: list[int], disabled: list[int] = ()
) -> bool:
    """True when every mesh component keeps a *live* source tap.

    Removing edges can island part of the grid; an island holding
    sinks but no surviving source is genuinely singular (and rejected
    by the solver), so parity tests skip those draws.  Disabled
    sources do not count — their branch carries no current and cannot
    reference an island to ground.
    """
    compiled = grid.compile()
    n_sources = len(compiled.vs_volt)
    cells = grid.nx * grid.ny
    keep = np.ones(len(compiled.res_ohm), dtype=bool)
    keep[list(removed)] = False
    mesh = keep[: 2 * cells - grid.nx - grid.ny]
    a = compiled.res_a[: len(mesh)][mesh]
    b = compiled.res_b[: len(mesh)][mesh]
    adjacency = coo_matrix(
        (np.ones(len(a)), (a, b)), shape=(cells, cells)
    )
    _, labels = connected_components(adjacency, directed=False)
    live = np.ones(n_sources, dtype=bool)
    live[list(disabled)] = False
    taps = compiled.res_b[-n_sources:][live]
    return set(labels) == set(labels[taps])


def build_grid(
    n: int,
    sheet: float,
    source_cells: list[tuple[float, float]],
    voltage: float,
    r_out: float,
    sink_scale: float,
) -> GridPDN:
    grid = GridPDN(1e-2, 1e-2, sheet, nx=n, ny=n)
    rng = np.random.default_rng(7)
    grid.set_sink_array(sink_scale * rng.random((n, n)))
    for k, (x, y) in enumerate(source_cells):
        grid.add_source(f"s{k}", x, y, voltage, r_out)
    return grid


def assert_voltage_parity(
    solver: FactorizedPDN, kwargs: dict, rtol: float = 1e-9
) -> None:
    fast = solver.solve_modified(method="woodbury", **kwargs)
    oracle = solver.solve_modified(method="refactor", **kwargs)
    scale = max(float(np.abs(oracle.node_voltage_array).max()), 1e-12)
    delta = np.abs(fast.node_voltage_array - oracle.node_voltage_array)
    assert delta.max() <= rtol * scale


grids = st.integers(min_value=3, max_value=7)
sheets = st.floats(min_value=1e-4, max_value=1e-1)
positions = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


@given(
    n=grids,
    sheet=sheets,
    sources=st.lists(positions, min_size=2, max_size=5),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_disabled_sources_match_refactorized(n, sheet, sources, data):
    """Woodbury N-k solves equal full refactorized solves."""
    grid = build_grid(n, sheet, sources, 1.0, 1e-3, 0.1)
    solver = FactorizedPDN(grid.compile())
    failed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(sources) - 1),
            min_size=1,
            max_size=len(sources) - 1,
            unique=True,
        )
    )
    assert_voltage_parity(solver, {"disable_sources": tuple(failed)})


@given(
    n=grids,
    sheet=sheets,
    sources=st.lists(positions, min_size=2, max_size=4),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_removed_edges_match_refactorized(n, sheet, sources, data):
    """Woodbury edge removals equal full refactorized solves.

    Only mesh edges are removed (the 2-D grid keeps alternative paths,
    so the system stays connected and well-posed).
    """
    grid = build_grid(n, sheet, sources, 1.0, 1e-3, 0.1)
    compiled = grid.compile()
    solver = FactorizedPDN(compiled)
    mesh_edges = 2 * n * (n - 1)
    removed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mesh_edges - 1),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    assume(stays_powered(grid, removed))
    assert_voltage_parity(solver, {"remove_resistors": tuple(removed)})


@given(
    n=grids,
    sheet=sheets,
    sources=st.lists(positions, min_size=2, max_size=4),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_combined_modifications_match_refactorized(n, sheet, sources, data):
    """Simultaneous source failures and edge opens stay in parity."""
    grid = build_grid(n, sheet, sources, 1.0, 1e-3, 0.1)
    solver = FactorizedPDN(grid.compile())
    failed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(sources) - 1),
            min_size=1,
            max_size=len(sources) - 1,
            unique=True,
        )
    )
    mesh_edges = 2 * n * (n - 1)
    removed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mesh_edges - 1),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    assume(stays_powered(grid, removed, failed))
    assert_voltage_parity(
        solver,
        {
            "disable_sources": tuple(failed),
            "remove_resistors": tuple(removed),
        },
    )


@given(
    feeds=st.lists(
        st.floats(min_value=1e-3, max_value=10.0), min_size=2, max_size=5
    ),
    load=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=40, deadline=None)
def test_removed_resistor_matches_rebuilt_netlist(feeds, load):
    """Removing a parallel feed equals a netlist built without it.

    The semantic oracle: N parallel feed resistors from the source to
    the load node; opening feed 0 via solve_modified must match a
    from-scratch solve of the netlist that never had feed 0.
    """
    full = Netlist()
    full.add_voltage_source("v", "in", 1.0)
    for i, r in enumerate(feeds):
        full.add_resistor(f"feed[{i}]", "in", "pol", r)
    full.add_load("cpu", "pol", load)

    reduced = Netlist()
    reduced.add_voltage_source("v", "in", 1.0)
    for i, r in enumerate(feeds[1:], start=1):
        reduced.add_resistor(f"feed[{i}]", "in", "pol", r)
    reduced.add_load("cpu", "pol", load)

    modified = FactorizedPDN(full).solve_modified(remove_resistors=(0,))
    oracle = FactorizedPDN(reduced).solve()
    assert modified.voltage("pol") == oracle.voltage("pol") or abs(
        modified.voltage("pol") - oracle.voltage("pol")
    ) <= 1e-9 * max(1.0, abs(oracle.voltage("pol")))
    assert modified.resistor_currents["feed[0]"] == 0.0
    assert modified.resistor_losses["feed[0]"] == 0.0


@given(
    n=grids,
    sheet=sheets,
    sources=st.lists(positions, min_size=3, max_size=5),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_batched_scenarios_match_refactorized(n, sheet, sources, data):
    """solve_modified_many (batched Woodbury) equals per-scenario
    refactorized solves, across mixed disable/removal sweeps."""
    grid = build_grid(n, sheet, sources, 1.0, 1e-3, 0.1)
    solver = FactorizedPDN(grid.compile())
    mesh_edges = 2 * n * (n - 1)
    scenario_count = data.draw(st.integers(min_value=1, max_value=4))
    scenarios = []
    for _ in range(scenario_count):
        failed = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(sources) - 1),
                min_size=0,
                max_size=len(sources) - 1,
                unique=True,
            )
        )
        removed = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=mesh_edges - 1),
                min_size=0,
                max_size=2,
                unique=True,
            )
        )
        assume(stays_powered(grid, removed, failed))
        scenarios.append((tuple(failed), tuple(removed)))

    batched = solver.solve_modified_many(scenarios, method="woodbury")
    assert len(batched) == len(scenarios)
    for (failed, removed), fast in zip(scenarios, batched):
        oracle = solver.solve_modified(
            disable_sources=failed,
            remove_resistors=removed,
            method="refactor",
        )
        scale = max(float(np.abs(oracle.node_voltage_array).max()), 1e-12)
        delta = np.abs(fast.node_voltage_array - oracle.node_voltage_array)
        assert delta.max() <= 1e-9 * scale


@given(
    n=grids,
    sheet=sheets,
    sources=st.lists(positions, min_size=2, max_size=4),
    data=st.data(),
)
@settings(max_examples=15, deadline=None)
def test_batched_refactor_method_matches_woodbury_batch(n, sheet, sources, data):
    """The method="refactor" oracle path of the batched API agrees
    with the batched Woodbury path on the same sweep."""
    grid = build_grid(n, sheet, sources, 1.0, 1e-3, 0.1)
    solver = FactorizedPDN(grid.compile())
    failed = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(sources) - 1),
            min_size=1,
            max_size=len(sources) - 1,
            unique=True,
        )
    )
    scenarios = [(tuple(failed), ()), ((), ())]
    fast = solver.solve_modified_many(scenarios, method="woodbury")
    oracle = solver.solve_modified_many(scenarios, method="refactor")
    for got, want in zip(fast, oracle):
        scale = max(float(np.abs(want.node_voltage_array).max()), 1e-12)
        delta = np.abs(got.node_voltage_array - want.node_voltage_array)
        assert delta.max() <= 1e-9 * scale
