"""Fleet energy accounting tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DSCH
from repro.core.architectures import reference_a0, single_stage_a2
from repro.core.energy import (
    HOURS_PER_YEAR,
    DeploymentModel,
    annual_energy,
    annual_savings,
)
from repro.core.loss_analysis import LossAnalyzer
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def breakdowns():
    analyzer = LossAnalyzer()
    return (
        analyzer.analyze(reference_a0(), DSCH),
        analyzer.analyze(single_stage_a2(), DSCH),
    )


class TestAnnualEnergy:
    def test_scaling_formula(self, breakdowns):
        a0, _ = breakdowns
        deployment = DeploymentModel(
            chip_count=1, utilization=1.0, pue=1.0, energy_cost_per_kwh=0.1
        )
        report = annual_energy(a0, deployment)
        expected = a0.total_loss_w * HOURS_PER_YEAR / 1000.0
        assert report.delivery_loss_kwh_per_year == pytest.approx(expected)

    def test_pue_multiplies_waste(self, breakdowns):
        a0, _ = breakdowns
        lean = annual_energy(a0, DeploymentModel(pue=1.0))
        fat = annual_energy(a0, DeploymentModel(pue=1.5))
        assert fat.delivery_loss_kwh_per_year == pytest.approx(
            1.5 * lean.delivery_loss_kwh_per_year
        )

    def test_cost_from_energy(self, breakdowns):
        a0, _ = breakdowns
        deployment = DeploymentModel(energy_cost_per_kwh=0.12)
        report = annual_energy(a0, deployment)
        assert report.delivery_cost_per_year == pytest.approx(
            0.12 * report.delivery_loss_kwh_per_year
        )

    def test_overhead_fraction(self, breakdowns):
        a0, a2 = breakdowns
        assert annual_energy(a0).overhead_fraction > annual_energy(
            a2
        ).overhead_fraction

    def test_fleet_scales_linearly(self, breakdowns):
        _, a2 = breakdowns
        one = annual_energy(a2, DeploymentModel(chip_count=1))
        thousand = annual_energy(a2, DeploymentModel(chip_count=1000))
        assert thousand.delivery_loss_kwh_per_year == pytest.approx(
            1000 * one.delivery_loss_kwh_per_year
        )


class TestSavings:
    def test_a2_saves_over_a0(self, breakdowns):
        a0, a2 = breakdowns
        savings = annual_savings(a0, a2)
        assert savings["energy_kwh_per_year"] > 0
        assert savings["cost_per_year"] > 0

    def test_magnitude_reasonable(self, breakdowns):
        """1000 chips x ~359 W saved x 0.7 duty x 1.3 PUE ~ 2.9 GWh/yr."""
        a0, a2 = breakdowns
        savings = annual_savings(a0, a2)
        assert 1e6 < savings["energy_kwh_per_year"] < 1e7

    def test_self_comparison_is_zero(self, breakdowns):
        a0, _ = breakdowns
        savings = annual_savings(a0, a0)
        assert savings["energy_kwh_per_year"] == pytest.approx(0.0)

    def test_mismatched_specs_rejected(self, breakdowns):
        from repro import SystemSpec

        a0, _ = breakdowns
        other = LossAnalyzer(SystemSpec().with_power(500.0)).analyze(
            single_stage_a2(), DSCH
        )
        with pytest.raises(ConfigError):
            annual_savings(a0, other)


class TestDeploymentValidation:
    def test_rejects_zero_chips(self):
        with pytest.raises(ConfigError):
            DeploymentModel(chip_count=0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigError):
            DeploymentModel(utilization=0.0)

    def test_rejects_pue_below_one(self):
        with pytest.raises(ConfigError):
            DeploymentModel(pue=0.9)

    def test_rejects_free_energy(self):
        with pytest.raises(ConfigError):
            DeploymentModel(energy_cost_per_kwh=0.0)
