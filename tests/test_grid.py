"""2-D grid PDN tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.grid import GridPDN
from repro.pdn.powermap import PowerMap


def make_grid(nx=10, ny=10, sheet=1e-3) -> GridPDN:
    return GridPDN(
        width_m=0.02, height_m=0.02, sheet_ohm_sq=sheet, nx=nx, ny=ny
    )


class TestConstruction:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigError):
            GridPDN(0.02, 0.02, 1e-3, nx=1, ny=4)

    def test_rejects_zero_sheet(self):
        with pytest.raises(ConfigError):
            GridPDN(0.02, 0.02, 0.0)

    def test_rejects_negative_extent(self):
        with pytest.raises(ConfigError):
            GridPDN(-0.02, 0.02, 1e-3)

    def test_edge_resistance_square_cells(self):
        grid = make_grid(nx=11, ny=11)
        # For near-square cells the x and y edge resistances are close.
        assert grid.edge_resistance_x_ohm == pytest.approx(
            grid.edge_resistance_y_ohm, rel=0.3
        )

    def test_edge_resistance_scales_with_sheet(self):
        g1 = make_grid(sheet=1e-3)
        g2 = make_grid(sheet=2e-3)
        assert g2.edge_resistance_x_ohm == pytest.approx(
            2 * g1.edge_resistance_x_ohm
        )


class TestSolveBasics:
    def test_requires_sinks(self):
        grid = make_grid()
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            grid.solve()

    def test_requires_sources(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 10.0)
        with pytest.raises(ConfigError):
            grid.solve()

    def test_source_current_equals_load(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 50.0)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.source_currents_a.sum() == pytest.approx(50.0)

    def test_two_symmetric_sources_share_equally(self):
        grid = make_grid(nx=11, ny=11)
        grid.set_sinks(PowerMap.uniform(), 100.0)
        grid.add_source("left", 0.0, 0.5, 1.0, 1e-3)
        grid.add_source("right", 1.0, 0.5, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.source_currents_a[0] == pytest.approx(
            solution.source_currents_a[1], rel=1e-6
        )

    def test_closer_source_carries_more(self):
        grid = make_grid(nx=11, ny=11)
        pmap = PowerMap.gaussian(center=(0.2, 0.5), sigma=0.08)
        grid.set_sinks(pmap, 100.0)
        grid.add_source("near", 0.0, 0.5, 1.0, 1e-4)
        grid.add_source("far", 1.0, 0.5, 1.0, 1e-4)
        solution = grid.solve()
        assert solution.source_currents_a[0] > solution.source_currents_a[1]

    def test_voltage_map_shape(self):
        grid = make_grid(nx=7, ny=9)
        grid.set_sinks(PowerMap.uniform(), 10.0)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.voltage_map.shape == (9, 7)

    def test_all_node_voltages_below_source_emf(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 20.0)
        grid.add_source("s", 0.0, 0.0, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.voltage_map.max() <= 1.0 + 1e-9

    def test_droop_positive_under_load(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 20.0)
        grid.add_source("s", 0.0, 0.0, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.worst_droop_v > 0


class TestLossAccounting:
    def test_rail_pair_factor(self):
        loads = PowerMap.uniform()
        g1 = GridPDN(0.02, 0.02, 1e-3, nx=8, ny=8, rail_pair_factor=1.0)
        g2 = GridPDN(0.02, 0.02, 1e-3, nx=8, ny=8, rail_pair_factor=2.0)
        for g in (g1, g2):
            g.set_sinks(loads, 30.0)
            g.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        assert g2.solve().lateral_loss_w == pytest.approx(
            2 * g1.solve().lateral_loss_w, rel=1e-9
        )

    def test_lateral_loss_scales_with_sheet(self):
        results = []
        for sheet in (0.5e-3, 1e-3):
            grid = make_grid(sheet=sheet)
            grid.set_sinks(PowerMap.uniform(), 30.0)
            grid.add_source("s", 0.5, 0.5, 1.0, 1e-6)
            results.append(grid.solve().lateral_loss_w)
        # Near-ideal source: loss approximately linear in the sheet.
        assert results[1] == pytest.approx(2 * results[0], rel=0.05)

    def test_source_loss_separate_from_lateral(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 30.0)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.source_loss_w > 0
        assert solution.lateral_loss_w > 0


class TestGridConvergence:
    def test_edge_feed_approaches_disk_model(self):
        """A rim-fed uniformly loaded square should dissipate near the
        analytic disk estimate R_sq/(8 pi) (same order; square vs
        disk differ by a geometry factor)."""
        from repro.pdn.planes import disk_edge_feed_resistance

        sheet = 1e-3
        current = 100.0
        grid = GridPDN(0.02, 0.02, sheet, nx=24, ny=24, rail_pair_factor=1.0)
        grid.set_sinks(PowerMap.uniform(), current)
        # Feed from many points along the rim, nearly ideal sources.
        for k in range(24):
            t = k / 24
            if t < 0.25:
                x, y = t * 4, 0.0
            elif t < 0.5:
                x, y = 1.0, (t - 0.25) * 4
            elif t < 0.75:
                x, y = 1.0 - (t - 0.5) * 4, 1.0
            else:
                x, y = 0.0, 1.0 - (t - 0.75) * 4
            grid.add_source(f"s{k}", x, y, 1.0, 1e-6)
        solution = grid.solve()
        analytic = current**2 * disk_edge_feed_resistance(sheet)
        assert solution.lateral_loss_w == pytest.approx(analytic, rel=0.8)
        assert solution.lateral_loss_w > analytic * 0.5

    def test_refinement_stability(self):
        """Lateral loss should be stable under grid refinement."""
        losses = []
        for n in (12, 20, 28):
            grid = GridPDN(0.02, 0.02, 1e-3, nx=n, ny=n)
            grid.set_sinks(PowerMap.uniform(), 50.0)
            grid.add_source("c", 0.5, 0.5, 1.0, 1e-4)
            losses.append(grid.solve().lateral_loss_w)
        assert losses[2] == pytest.approx(losses[1], rel=0.15)


class TestRingBus:
    def test_ring_equalizes_sharing(self):
        def spread(with_ring: bool) -> float:
            grid = make_grid(nx=16, ny=16)
            grid.set_sinks(PowerMap.gaussian(sigma=0.12), 100.0)
            for k, (x, y) in enumerate(
                [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.0)]
            ):
                grid.add_source(f"s{k}", x, y, 1.0, 1e-4)
            if with_ring:
                grid.connect_sources_with_ring_bus(1e-5)
            c = grid.solve().source_currents_a
            return float(c.max() - c.min())

        assert spread(True) < spread(False)

    def test_ring_requires_three_sources(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 10.0)
        grid.add_source("a", 0.0, 0.0, 1.0, 1e-3)
        grid.add_source("b", 1.0, 1.0, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            grid.connect_sources_with_ring_bus(1e-5)

    def test_ring_rejects_zero_resistance(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 10.0)
        for k in range(3):
            grid.add_source(f"s{k}", k / 2.0, 0.0, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            grid.connect_sources_with_ring_bus(0.0)


class TestSinkArray:
    def test_explicit_sink_array(self):
        grid = make_grid(nx=4, ny=4)
        sinks = np.zeros((4, 4))
        sinks[2, 2] = 25.0
        grid.set_sink_array(sinks)
        grid.add_source("s", 0.0, 0.0, 1.0, 1e-3)
        solution = grid.solve()
        assert solution.source_currents_a.sum() == pytest.approx(25.0)

    def test_rejects_wrong_shape(self):
        grid = make_grid(nx=4, ny=4)
        with pytest.raises(ConfigError):
            grid.set_sink_array(np.ones((3, 4)))

    def test_rejects_negative_sinks(self):
        grid = make_grid(nx=4, ny=4)
        with pytest.raises(ConfigError):
            grid.set_sink_array(-np.ones((4, 4)))


class TestEdgeCurrentStats:
    def test_stats_present_and_ordered(self):
        grid = make_grid()
        grid.set_sinks(PowerMap.uniform(), 50.0)
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        stats = grid.solve().edge_current_stats()
        assert stats["max_a"] >= stats["mean_a"] > 0

    def test_edge_currents_scale_with_load(self):
        results = []
        for load in (25.0, 50.0):
            grid = make_grid()
            grid.set_sinks(PowerMap.uniform(), load)
            grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
            results.append(grid.solve().edge_current_stats()["max_a"])
        assert results[1] == pytest.approx(2 * results[0], rel=1e-6)

    def test_hotspot_concentrates_edge_current(self):
        def max_edge(pmap) -> float:
            grid = make_grid(nx=14, ny=14)
            grid.set_sinks(pmap, 100.0)
            grid.add_source("s", 0.0, 0.5, 1.0, 1e-3)
            return grid.solve().edge_current_stats()["max_a"]

        assert max_edge(
            PowerMap.gaussian(sigma=0.08)
        ) > max_edge(PowerMap.uniform())


class TestSourceValidation:
    def test_rejects_out_of_die(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            grid.add_source("s", 1.2, 0.5, 1.0, 1e-3)

    def test_rejects_zero_impedance(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            grid.add_source("s", 0.5, 0.5, 1.0, 0.0)

    def test_clear_sources(self):
        grid = make_grid()
        grid.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        grid.clear_sources()
        assert grid.source_names == []


class TestSolveDisabled:
    def powered_grid(self, n_sources=4) -> GridPDN:
        grid = make_grid()
        grid.set_sinks(PowerMap.hotspot_mixture(), 120.0)
        for k in range(n_sources):
            t = k / max(n_sources - 1, 1)
            grid.add_source(f"s{k}", t, t, 1.0, 1e-3)
        return grid

    def test_disabled_source_reports_zero_current(self):
        grid = self.powered_grid()
        solution = grid.solve_disabled((1,))
        assert solution.source_currents_a[1] == 0.0
        assert solution.source_currents_a.sum() == pytest.approx(
            120.0, rel=1e-6
        )

    def test_matches_survivor_only_grid_without_ring(self):
        """Without a ring bus, disabling equals detaching: a dead
        source's rout is electrically invisible."""
        full = self.powered_grid()
        disabled = full.solve_disabled((2,))

        survivors = make_grid()
        survivors.set_sinks(PowerMap.hotspot_mixture(), 120.0)
        for k in range(4):
            if k == 2:
                continue
            t = k / 3
            survivors.add_source(f"s{k}", t, t, 1.0, 1e-3)
        detached = survivors.solve()

        assert disabled.voltage_map == pytest.approx(
            detached.voltage_map, rel=1e-9
        )
        kept = np.delete(disabled.source_currents_a, 2)
        assert kept == pytest.approx(
            detached.source_currents_a, rel=1e-9
        )

    def test_shares_one_factorization_across_scenarios(self):
        grid = self.powered_grid()
        grid.solve()
        structure = grid._structure
        solver = structure._solver
        for k in range(3):
            grid.solve_disabled((k,))
        assert grid._structure is structure
        assert structure._solver is solver

    def test_baseline_empty_disable_equals_solve(self):
        grid = self.powered_grid()
        base = grid.solve()
        empty = grid.solve_disabled(())
        assert empty.voltage_map == pytest.approx(base.voltage_map)

    def test_validation(self):
        grid = self.powered_grid(n_sources=2)
        with pytest.raises(ConfigError):
            grid.solve_disabled((5,))
        with pytest.raises(ConfigError):
            grid.solve_disabled((0, 1))


class TestGridACDCLimit:
    """Grid-AC driven sweeps must converge to the DC grid solution."""

    def pair(self):
        from repro.pdn.grid import GridACPDN

        grid = make_grid(nx=6, ny=6)
        grid.set_sinks(PowerMap.hotspot_mixture(), 40.0)
        grid.add_source("a", 0.0, 0.0, 1.0, 1e-3)
        grid.add_source("b", 1.0, 1.0, 1.02, 2e-3)
        ac = GridACPDN.from_grid(grid, source_inductance_h=1e-11)
        ac.set_decap_density(1.0, 1e-6, 2e-3, 1e-10)
        return grid, ac

    def test_low_frequency_limit_matches_dc(self):
        """As f drops the decaps open and the inductors short, so the
        voltage maps must converge to the DC IR-drop solution."""
        grid, ac = self.pair()
        dc_map = grid.solve().voltage_map
        freqs = np.array([1.0, 1e3, 1e6])
        sweep = ac.solve(freqs)
        errors = [
            float(np.abs(np.abs(sweep.voltage_maps[k]) - dc_map).max())
            for k in range(len(freqs))
        ]
        assert errors[0] <= 1e-9
        assert errors[0] < errors[1] < errors[2]

    def test_from_grid_mirrors_topology(self):
        grid, ac = self.pair()
        assert ac.source_names == grid.source_names
        assert (ac.nx, ac.ny) == (grid.nx, grid.ny)
        assert ac.edge_resistance_x_ohm == pytest.approx(
            grid.edge_resistance_x_ohm
        )

    def test_impedance_map_rejects_nonpositive_frequencies(self):
        _, ac = self.pair()
        for bad in (np.array([0.0]), np.array([-1.0, 1e6]), np.array([])):
            with pytest.raises(ConfigError):
                ac.impedance_map(bad)

    def test_driven_solve_rejects_nonpositive_frequencies(self):
        _, ac = self.pair()
        for bad in (np.array([0.0]), np.array([1e3, -5.0]), np.array([])):
            with pytest.raises(ConfigError):
                ac.solve(bad)

    def test_impedance_map_requires_sources(self):
        from repro.pdn.grid import GridACPDN

        bare = GridACPDN(0.02, 0.02, 1e-3, nx=4, ny=4)
        bare.set_decap_density(1.0, 1e-6)
        with pytest.raises(ConfigError):
            bare.impedance_map(np.array([1e6]))

    def test_spectral_requires_eligible_topology(self):
        from repro.pdn.grid import GridACPDN

        pdn = GridACPDN(
            0.02, 0.02, 1e-3, nx=4, ny=4, edge_inductance_x_h=1e-11
        )
        pdn.set_decap_density(1.0, 1e-6)
        pdn.add_source("s", 0.5, 0.5, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            pdn.impedance_map(np.array([1e6]), method="spectral")
        # "auto" silently falls back to the direct engine.
        assert np.all(
            np.isfinite(pdn.impedance_map(np.array([1e6])).z_ohm)
        )


class TestSolveDisabledMany:
    def powered_grid(self) -> GridPDN:
        grid = make_grid()
        grid.set_sinks(PowerMap.hotspot_mixture(), 120.0)
        for k in range(5):
            t = k / 4
            grid.add_source(f"s{k}", t, t, 1.0, 1e-3)
        return grid

    def test_batched_matches_single_scenario_solves(self):
        grid = self.powered_grid()
        scenarios = [(0,), (1, 3), (4,), ()]
        batched = grid.solve_disabled_many(scenarios)
        for failed, got in zip(scenarios, batched):
            want = (
                grid.solve_disabled(failed) if failed else grid.solve()
            )
            assert got.voltage_map == pytest.approx(
                want.voltage_map, rel=1e-9
            )
            assert got.source_currents_a[list(failed)] == pytest.approx(0.0)

    def test_empty_sweep(self):
        grid = self.powered_grid()
        assert grid.solve_disabled_many([]) == []

    def test_preload_failure_sweep_warms_influence_cache(self):
        grid = self.powered_grid()
        grid.preload_failure_sweep()
        solver = grid._structure.solver
        assert all(("vs", j) in solver._influence for j in range(5))
        fast = grid.solve_disabled((2,))
        oracle = grid.solve_disabled((2,), method="refactor")
        assert fast.voltage_map == pytest.approx(
            oracle.voltage_map, rel=1e-9
        )

    def test_validation(self):
        grid = self.powered_grid()
        with pytest.raises(ConfigError):
            grid.solve_disabled_many([(9,)])
        with pytest.raises(ConfigError):
            grid.solve_disabled_many([(0, 1, 2, 3, 4)])
