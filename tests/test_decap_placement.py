"""Spatially-resolved decap placement and VR-site selection.

Covers the ISSUE acceptance criterion head-on: on a mesh whose
high-band peaks are locally decap-controlled, uniform doubling
(:func:`~repro.pdn.impedance.size_grid_decap_for_target`) must need
>= 4x total capacitance while the placement optimizer meets the same
per-node target with <= 60% of that capacitance.  Property tests pin
the structural guarantees: the optimizer is never worse than the
uniform allocation at the same budget, the recorded violating-node
fraction is monotonically non-increasing, the budget projection is
exact, and coarse-to-fine grid mapping round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pdn.decap_placement import (
    TARGET_RTOL,
    _project_budget,
    optimize_decap_placement,
    prolong_density,
    restrict_density,
    select_vr_sites,
    size_decap_placement_for_target,
)
from repro.pdn.grid import GridACPDN, GridPDN
from repro.pdn.impedance import size_grid_decap_for_target


def _contrast_pdn():
    """12x12 mesh whose 100 MHz-1 GHz peaks are decap-starved far from
    the two co-located sources: per-node required density spans ~1.9x
    to ~4.5x the attached allocation, so uniform doubling over-pays
    while placement water-fills."""
    pdn = GridACPDN(0.01, 0.01, 2e-2, nx=12, ny=12)
    pdn.set_decap_density(1.0, 10e-9, 1e-3, 1e-12)
    pdn.add_source("a", 0.0, 0.0, 1.0, 1e-4, 1e-11)
    pdn.add_source("b", 0.25, 0.0, 1.0, 1e-4, 1e-11)
    return pdn, np.logspace(8, 9, 25), 0.005


def _uniform_peaks(pdn, freqs):
    """Peak map of the uniform allocation at the attached budget."""
    snapshot = pdn.decap_snapshot()
    _, density, c_u, esr_u, esl_u = pdn._decap
    uniform = np.full_like(
        np.asarray(density, dtype=float), density.sum() / density.size
    )
    try:
        pdn.set_decap_density(uniform, c_u, esr_u, esl_u)
        return pdn.impedance_map(freqs).peak_map()
    finally:
        pdn.restore_decap(snapshot)


class TestGridMapping:
    """Coarse-to-fine density transfer (SNIPPETS.md section 2 idiom)."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fine=st.tuples(
            st.integers(min_value=2, max_value=11),
            st.integers(min_value=2, max_value=11),
        ),
        coarse=st.tuples(
            st.integers(min_value=1, max_value=11),
            st.integers(min_value=1, max_value=11),
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_prolong_then_restrict_is_identity(self, seed, fine, coarse):
        if coarse[0] > fine[0] or coarse[1] > fine[1]:
            with pytest.raises(ConfigError):
                prolong_density(np.ones(coarse), fine)
            return
        rng = np.random.default_rng(seed)
        density = rng.uniform(0.1, 5.0, coarse)
        fine_density = prolong_density(density, fine)
        assert fine_density.shape == fine
        assert fine_density.sum() == pytest.approx(density.sum())
        back = restrict_density(fine_density, coarse)
        np.testing.assert_allclose(back, density, rtol=1e-12)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_restrict_preserves_total(self, seed):
        rng = np.random.default_rng(seed)
        density = rng.uniform(0.0, 3.0, (9, 7))
        coarse = restrict_density(density, (4, 3))
        assert coarse.shape == (4, 3)
        assert coarse.sum() == pytest.approx(density.sum())


class TestBudgetProjection:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_projection_is_feasible_and_idempotent(self, seed, n):
        rng = np.random.default_rng(seed)
        alpha = rng.uniform(0.0, 10.0, n)
        total = float(rng.uniform(0.5, 20.0))
        floor = float(rng.uniform(0.0, 0.9)) * total / n
        out = _project_budget(alpha, floor, total)
        assert out.sum() == pytest.approx(total, rel=1e-9)
        assert np.all(out >= floor - 1e-12 * max(total, 1.0))
        again = _project_budget(out, floor, total)
        np.testing.assert_allclose(again, out, atol=1e-9 * total)

    def test_infeasible_floor_rejected(self):
        with pytest.raises(ConfigError):
            _project_budget(np.ones(4), floor=1.0, total=2.0)


class TestOptimizer:
    def test_acceptance_beats_uniform_doubling(self):
        """The ISSUE acceptance criterion: uniform sizing needs >= 4x
        capacitance; optimized placement meets the same target with
        <= 60% of the uniform recommendation."""
        pdn, freqs, target = _contrast_pdn()
        base_f = pdn.total_decap_farad

        uniform = size_grid_decap_for_target(
            pdn, target, frequencies_hz=freqs
        )
        assert uniform.meets_target
        assert uniform.recommended_farad >= 4.0 * base_f

        placed = size_decap_placement_for_target(
            pdn, target, frequencies_hz=freqs
        )
        assert placed.meets_target
        assert (
            placed.capacitance_budget_f
            <= 0.6 * uniform.recommended_farad
        )
        assert placed.total_capacitance_after_f == pytest.approx(
            placed.capacitance_budget_f
        )
        # The search left the caller's allocation untouched.
        assert pdn.total_decap_farad == pytest.approx(base_f)

    def test_history_monotone_and_state_restored(self):
        pdn, freqs, target = _contrast_pdn()
        before = pdn.decap_snapshot()
        result = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            budget_f=pdn.total_decap_farad * 8.0,
        )
        history = result.violating_fraction_history
        assert len(history) >= 1
        assert all(
            later <= earlier
            for earlier, later in zip(history, history[1:])
        )
        assert history[-1] == result.violating_fraction_after
        after = pdn.decap_snapshot()
        assert after[1] == before[1]
        state_before, state_after = before[0], after[0]
        assert state_after[0] == state_before[0]
        np.testing.assert_array_equal(state_after[1], state_before[1])

    def test_budget_exact_and_apply_to(self):
        pdn, freqs, target = _contrast_pdn()
        budget = pdn.total_decap_farad * 3.0
        result = optimize_decap_placement(
            pdn, target, frequencies_hz=freqs, budget_f=budget
        )
        assert result.total_capacitance_after_f == pytest.approx(budget)
        assert np.all(result.density_after > 0.0)
        result.apply_to(pdn)
        assert pdn.total_decap_farad == pytest.approx(budget)
        # The applied map reproduces the reported peak map.
        peaks = pdn.impedance_map(freqs).peak_map()
        np.testing.assert_allclose(
            peaks, result.peak_map_after, rtol=1e-6
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_uniform(self, seed, n):
        """At any budget, the optimized allocation's (violating
        fraction, peak) is lexicographically <= the uniform
        allocation's: uniform is always a candidate start and steps
        are accept-only-on-improvement."""
        rng = np.random.default_rng(seed)
        pdn = GridACPDN(
            0.01, 0.01, float(10.0 ** rng.uniform(-3.0, -1.5)), nx=n, ny=n
        )
        pdn.set_decap_density(
            rng.uniform(0.5, 1.5, (n, n)), 20e-9, 1e-3, 1e-12
        )
        pdn.add_source(
            "a",
            float(rng.random()),
            float(rng.random()),
            1.0,
            1e-4,
            1e-10,
        )
        freqs = np.logspace(6, 9, 13)
        uniform_peaks = _uniform_peaks(pdn, freqs)
        target = float(np.quantile(uniform_peaks, 0.5))
        tol = target * (1 + TARGET_RTOL)
        uniform_vf = np.count_nonzero(uniform_peaks > tol) / (n * n)
        result = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            max_iterations=3,
            gradient_steps=1,
            multi_resolution=False,
        )
        assert result.violating_fraction_after <= uniform_vf + 1e-12
        if result.violating_fraction_after == uniform_vf:
            assert result.peak_impedance_after_ohm <= float(
                uniform_peaks.max()
            ) * (1 + 1e-9)
        history = result.violating_fraction_history
        assert all(
            later <= earlier
            for earlier, later in zip(history, history[1:])
        )

    def test_multi_resolution_uses_coarse_warm_start(self):
        pdn, freqs, target = _contrast_pdn()
        result = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            budget_f=pdn.total_decap_farad * 8.0,
            multi_resolution=True,
        )
        assert result.coarse_shape == (6, 6)
        explicit = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            budget_f=pdn.total_decap_farad * 8.0,
            multi_resolution=True,
            coarse_shape=(4, 4),
        )
        assert explicit.coarse_shape == (4, 4)
        off = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            budget_f=pdn.total_decap_farad * 8.0,
            multi_resolution=False,
        )
        assert off.coarse_shape is None

    def test_zero_budgets_return_best_start(self):
        pdn, freqs, target = _contrast_pdn()
        result = optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            max_iterations=0,
            gradient_steps=0,
            multi_resolution=False,
        )
        assert result.iterations == 0
        assert result.gradient_steps_taken == 0
        assert len(result.violating_fraction_history) == 1

    def test_rejects_bad_inputs(self):
        pdn, freqs, target = _contrast_pdn()
        with pytest.raises(ConfigError):
            optimize_decap_placement(pdn, 0.0)
        with pytest.raises(ConfigError):
            optimize_decap_placement(pdn, target, floor_fraction=0.0)
        with pytest.raises(ConfigError):
            optimize_decap_placement(
                pdn, target, multi_resolution="always"
            )
        with pytest.raises(ConfigError):
            optimize_decap_placement(pdn, target, budget_f=-1.0)
        with pytest.raises(ConfigError):
            optimize_decap_placement(
                pdn,
                target,
                multi_resolution=True,
                coarse_shape=(1, 1),
            )
        # "map" representation has no unit-cell density to move.
        mapped = GridACPDN(0.01, 0.01, 1e-2, nx=4, ny=4)
        mapped.set_decap_map(np.full((4, 4), 1e-8), 1e-3, 1e-12)
        mapped.add_source("a", 0.0, 0.0, 1.0, 1e-4, 1e-11)
        with pytest.raises(ConfigError):
            optimize_decap_placement(mapped, target)
        # No sources attached.
        bare = GridACPDN(0.01, 0.01, 1e-2, nx=4, ny=4)
        bare.set_decap_density(1.0, 1e-8, 1e-3, 1e-12)
        with pytest.raises(ConfigError):
            optimize_decap_placement(bare, target)


class TestSizer:
    def test_returns_failing_result_when_capped(self):
        pdn, freqs, _ = _contrast_pdn()
        result = size_decap_placement_for_target(
            pdn,
            1e-9,
            frequencies_hz=freqs,
            max_budget_factor=2.0,
            max_iterations=2,
            gradient_steps=0,
            multi_resolution=False,
        )
        assert not result.meets_target
        assert pdn.total_decap_farad == pytest.approx(
            pdn.nx * pdn.ny * 10e-9
        )

    def test_rejects_bad_parameters(self):
        pdn, freqs, target = _contrast_pdn()
        with pytest.raises(ConfigError):
            size_decap_placement_for_target(
                pdn, target, max_budget_factor=0.5
            )
        with pytest.raises(ConfigError):
            size_decap_placement_for_target(pdn, target, growth=1.0)
        with pytest.raises(ConfigError):
            size_decap_placement_for_target(
                pdn, target, refine_steps=-1
            )


def _candidate_bank(load_corner=(0.9, 0.9)):
    """6x6 DC grid with a concentrated load and four corner candidate
    VR sites; the site nearest the load is the obvious first pick."""
    grid = GridPDN(0.02, 0.02, 5e-3, nx=6, ny=6)
    sinks = np.zeros((6, 6))
    lx, ly = load_corner
    sinks[int(ly * 5), int(lx * 5)] = 50.0
    grid.set_sink_array(sinks)
    for i, (x, y) in enumerate(
        [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
    ):
        grid.add_source(f"vr{i}", x, y, 1.0, 2e-3)
    return grid


class TestVRSiteSelection:
    def test_first_pick_is_nearest_the_load(self):
        grid = _candidate_bank(load_corner=(0.9, 0.9))
        selection = select_vr_sites(grid, 1)
        assert selection.chosen_names == ("vr3",)
        assert selection.objective == "min-voltage"
        assert selection.min_voltage_v < 1.0

    def test_scores_non_decreasing_as_sites_are_added(self):
        grid = _candidate_bank()
        selection = select_vr_sites(grid, 3)
        assert len(selection.chosen_indices) == 3
        assert len(set(selection.chosen_indices)) == 3
        history = selection.score_history
        assert all(
            later >= earlier - 1e-12
            for earlier, later in zip(history, history[1:])
        )

    def test_parallel_matches_serial(self):
        grid = _candidate_bank()
        serial = select_vr_sites(grid, 2, jobs=1)
        parallel = select_vr_sites(grid, 2, jobs=2, chunk_size=1)
        assert parallel.chosen_indices == serial.chosen_indices
        assert parallel.score_history == pytest.approx(
            serial.score_history
        )

    def test_rejects_bad_count_and_missing_sinks(self):
        grid = _candidate_bank()
        with pytest.raises(ConfigError):
            select_vr_sites(grid, 0)
        with pytest.raises(ConfigError):
            select_vr_sites(grid, 5)
        bare = GridPDN(0.02, 0.02, 5e-3, nx=4, ny=4)
        bare.add_source("vr0", 0.0, 0.0, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            select_vr_sites(bare, 1)
