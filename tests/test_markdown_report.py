"""Markdown report generation tests."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.reporting.markdown import markdown_report, write_markdown_report


@pytest.fixture(scope="module")
def report_text():
    return markdown_report()


class TestContent:
    def test_has_title(self, report_text):
        assert report_text.startswith("# Vertical Power Delivery")

    def test_system_summary(self, report_text):
        assert "1000 W" in report_text
        assert "500 mm" in report_text

    def test_claim_table_present(self, report_text):
        assert "## Claim-level checks" in report_text
        assert "| E-FIG7 |" in report_text

    def test_all_claims_hold_in_default_run(self, report_text):
        assert "✗" not in report_text

    def test_fig7_table(self, report_text):
        assert "## Fig. 7" in report_text
        assert "| A0 |" in report_text
        assert "excluded" in report_text  # 3LHD rows

    def test_tables_section(self, report_text):
        assert "## Table I" in report_text
        assert "## Table II" in report_text
        assert "advanced Cu pad" in report_text

    def test_utilization_section(self, report_text):
        assert "## Interconnect utilization" in report_text
        assert "1200 mm" in report_text

    def test_sharing_section(self, report_text):
        assert "## Per-VR current sharing" in report_text
        assert "**A1**" in report_text and "**A2**" in report_text

    def test_floorplans_rendered(self, report_text):
        assert "## Floorplans" in report_text
        assert "DSCH x48" in report_text

    def test_markdown_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0


class TestFile:
    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "report.md"
        returned = write_markdown_report(str(path))
        assert returned == str(path)
        content = path.read_text(encoding="utf-8")
        assert content.startswith("# Vertical Power Delivery")

    def test_custom_spec(self, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report(str(path), SystemSpec().with_power(500.0))
        assert "500 W" in path.read_text(encoding="utf-8")
