"""PowerMap tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.powermap import PowerMap


class TestUniformMap:
    def test_cells_sum_to_total(self):
        cells = PowerMap.uniform().cell_currents(8, 8, 1000.0)
        assert cells.sum() == pytest.approx(1000.0)

    def test_cells_equal(self):
        cells = PowerMap.uniform().cell_currents(8, 8, 640.0)
        assert np.allclose(cells, 10.0)

    def test_peak_to_mean_is_one(self):
        assert PowerMap.uniform().peak_to_mean() == pytest.approx(1.0)

    def test_shape(self):
        cells = PowerMap.uniform().cell_currents(4, 6, 1.0)
        assert cells.shape == (6, 4)


class TestGaussianMap:
    def test_cells_sum_to_total(self):
        pmap = PowerMap.gaussian(sigma=0.2)
        cells = pmap.cell_currents(16, 16, 500.0)
        assert cells.sum() == pytest.approx(500.0)

    def test_center_is_peak(self):
        pmap = PowerMap.gaussian(sigma=0.15)
        cells = pmap.cell_currents(17, 17, 1.0)
        peak_index = np.unravel_index(np.argmax(cells), cells.shape)
        assert peak_index == (8, 8)

    def test_off_center(self):
        pmap = PowerMap.gaussian(center=(0.25, 0.75), sigma=0.1)
        cells = pmap.cell_currents(16, 16, 1.0)
        iy, ix = np.unravel_index(np.argmax(cells), cells.shape)
        assert ix < 8 and iy > 8

    def test_smaller_sigma_sharper(self):
        broad = PowerMap.gaussian(sigma=0.3).peak_to_mean()
        sharp = PowerMap.gaussian(sigma=0.1).peak_to_mean()
        assert sharp > broad

    def test_floor_softens(self):
        no_floor = PowerMap.gaussian(sigma=0.1).peak_to_mean()
        floored = PowerMap.gaussian(sigma=0.1, floor=1.0).peak_to_mean()
        assert floored < no_floor

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigError):
            PowerMap.gaussian(sigma=0.0)

    def test_rejects_negative_floor(self):
        with pytest.raises(ConfigError):
            PowerMap.gaussian(floor=-0.1)


class TestHotspotMixture:
    def test_default_calibration_severity(self):
        # The calibrated default must be a strong center hotspot
        # (peak-to-mean well above 4) to reproduce the paper's
        # 10-93 A under-die sharing spread.
        ratio = PowerMap.hotspot_mixture().peak_to_mean()
        assert 4.0 < ratio < 12.0

    def test_uniform_fraction_one_is_flat(self):
        ratio = PowerMap.hotspot_mixture(uniform_fraction=1.0).peak_to_mean()
        assert ratio == pytest.approx(1.0)

    def test_sum_preserved(self):
        cells = PowerMap.hotspot_mixture().cell_currents(24, 24, 1000.0)
        assert cells.sum() == pytest.approx(1000.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            PowerMap.hotspot_mixture(uniform_fraction=1.5)


class TestMultiHotspot:
    def test_peaks_at_centers(self):
        pmap = PowerMap.multi_hotspot(
            [(0.25, 0.25), (0.75, 0.75)], sigma=0.06, uniform_fraction=0.2
        )
        cells = pmap.cell_currents(32, 32, 1.0)
        # The two hotspot quadrants must hold far more current than
        # the two empty quadrants, and roughly equal shares.
        q_hot1 = cells[:16, :16].sum()
        q_hot2 = cells[16:, 16:].sum()
        q_cold = cells[:16, 16:].sum() + cells[16:, :16].sum()
        assert q_hot1 == pytest.approx(q_hot2, rel=0.05)
        assert q_hot1 > 2 * q_cold

    def test_rejects_empty_centers(self):
        with pytest.raises(ConfigError):
            PowerMap.multi_hotspot([])


class TestFromArray:
    def test_reproduces_blocks(self):
        grid = np.array([[1.0, 0.0], [0.0, 1.0]])
        pmap = PowerMap.from_array(grid)
        cells = pmap.cell_currents(2, 2, 100.0)
        assert cells[0, 0] == pytest.approx(50.0)
        assert cells[0, 1] == pytest.approx(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            PowerMap.from_array(np.array([[1.0, -1.0]]))

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigError):
            PowerMap.from_array(np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ConfigError):
            PowerMap.from_array(np.ones(4))


class TestValidation:
    def test_rejects_zero_total(self):
        with pytest.raises(ConfigError):
            PowerMap.uniform().cell_currents(4, 4, 0.0)

    def test_rejects_zero_grid(self):
        with pytest.raises(ConfigError):
            PowerMap.uniform().cell_currents(0, 4, 1.0)
