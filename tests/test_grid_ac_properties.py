"""Property-based parity of the grid-level AC engine (hypothesis).

:class:`repro.pdn.grid.GridACPDN` folds decap chains (C + ESR + ESL)
and source output branches into per-node shunt admittances and solves
the reduced mesh directly or spectrally.  On small random meshes both
engines must match building the equivalent lumped
:class:`~repro.pdn.ac.ACNetlist` *by hand* and solving it with the
retained scalar oracle :func:`~repro.pdn.ac.solve_ac` — per node, per
frequency, to 1e-9 relative — across random decap/ESL maps, source
placements, and frequencies.  The driven sweep (compiled full
structure, internal chain nodes and all) is held to the same oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pdn.ac import (
    GRID_DENSE_CELL_CUTOFF,
    ACNetlist,
    grid_direct_mode,
    probe_netlist,
    solve_ac,
)
from repro.pdn.grid import GridACPDN

RTOL = 1e-9
# The structured engine's acceptance bound: eigen-transform round trips
# accumulate a little more float noise than direct LU, but stay well
# inside the issue's 1e-8 parity budget.
STRUCTURED_RTOL = 1e-8

sheets = st.floats(min_value=1e-3, max_value=1e-1)
caps = st.floats(min_value=1e-8, max_value=1e-6)
esrs = st.floats(min_value=1e-3, max_value=1e-1)
esls = st.floats(min_value=1e-12, max_value=1e-10)
routs = st.floats(min_value=1e-3, max_value=1e-1)
frequencies = st.floats(min_value=1e4, max_value=1e9)
densities = st.floats(min_value=0.2, max_value=5.0)
positions = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


def node_name(ix: int, iy: int) -> str:
    return f"n{ix},{iy}"


def lumped_equivalent(
    nx: int,
    ny: int,
    rx: float,
    ry: float,
    c_map: np.ndarray,
    esr_map: np.ndarray,
    esl_map: np.ndarray,
    sources: list[tuple[int, int, float, float, float]],
    sinks: np.ndarray | None = None,
    edge_lx: float = 0.0,
    edge_ly: float = 0.0,
    ring_ohm: float | None = None,
) -> ACNetlist:
    """The grid's circuit, built element by element (the oracle side).

    Deliberately independent of the array assemblers: plain
    ``add_*`` calls, one per element, so a stamping bug in the
    compiled paths cannot hide in a shared helper.
    """
    net = ACNetlist()
    for iy in range(ny):
        for ix in range(nx):
            if ix + 1 < nx:
                if edge_lx > 0:
                    net.add_resistor(
                        f"x{ix},{iy}",
                        node_name(ix, iy),
                        f"xm{ix},{iy}",
                        rx,
                    )
                    net.add_inductor(
                        f"xl{ix},{iy}",
                        f"xm{ix},{iy}",
                        node_name(ix + 1, iy),
                        edge_lx,
                    )
                else:
                    net.add_resistor(
                        f"x{ix},{iy}",
                        node_name(ix, iy),
                        node_name(ix + 1, iy),
                        rx,
                    )
            if iy + 1 < ny:
                if edge_ly > 0:
                    net.add_resistor(
                        f"y{ix},{iy}",
                        node_name(ix, iy),
                        f"ym{ix},{iy}",
                        ry,
                    )
                    net.add_inductor(
                        f"yl{ix},{iy}",
                        f"ym{ix},{iy}",
                        node_name(ix, iy + 1),
                        edge_ly,
                    )
                else:
                    net.add_resistor(
                        f"y{ix},{iy}",
                        node_name(ix, iy),
                        node_name(ix, iy + 1),
                        ry,
                    )
            c = float(c_map[iy, ix])
            if c > 0:
                esr = float(esr_map[iy, ix])
                esl = float(esl_map[iy, ix])
                chain = node_name(ix, iy)
                if esr > 0 or esl > 0:
                    net.add_capacitor(f"c{ix},{iy}", chain, f"d{ix},{iy}", c)
                    chain = f"d{ix},{iy}"
                    if esr > 0 and esl > 0:
                        net.add_resistor(
                            f"cr{ix},{iy}", chain, f"e{ix},{iy}", esr
                        )
                        net.add_inductor(
                            f"cl{ix},{iy}", f"e{ix},{iy}", net.GROUND, esl
                        )
                    elif esr > 0:
                        net.add_resistor(f"cr{ix},{iy}", chain, net.GROUND, esr)
                    else:
                        net.add_inductor(f"cl{ix},{iy}", chain, net.GROUND, esl)
                else:
                    net.add_capacitor(
                        f"c{ix},{iy}", chain, net.GROUND, c
                    )
            if sinks is not None and sinks[iy, ix] > 0:
                net.add_current_source(
                    f"sink{ix},{iy}",
                    node_name(ix, iy),
                    net.GROUND,
                    float(sinks[iy, ix]),
                )
    for k, (ix, iy, voltage, rout, l_src) in enumerate(sources):
        net.add_voltage_source(f"v{k}", f"emf{k}", voltage)
        if l_src > 0:
            net.add_resistor(f"r{k}", f"emf{k}", f"mid{k}", rout)
            net.add_inductor(f"l{k}", f"mid{k}", node_name(ix, iy), l_src)
        else:
            net.add_resistor(f"r{k}", f"emf{k}", node_name(ix, iy), rout)
    if ring_ohm is not None:
        count = len(sources)
        for k in range(count):
            ax, ay = sources[k][:2]
            bx, by = sources[(k + 1) % count][:2]
            if (ax, ay) == (bx, by):
                continue
            net.add_resistor(
                f"ring{k}", node_name(ax, ay), node_name(bx, by), ring_ohm
            )
    return net


def snap(pdn: GridACPDN, x: float, y: float) -> tuple[int, int]:
    ix = min(int(round(x * (pdn.nx - 1))), pdn.nx - 1)
    iy = min(int(round(y * (pdn.ny - 1))), pdn.ny - 1)
    return ix, iy


def attach_sources(
    pdn: GridACPDN, draws: list[tuple]
) -> list[tuple[int, int, float, float, float]]:
    """Attach drawn sources to the grid, dropping position collisions,
    and return the (ix, iy, V, rout, L) list for the lumped oracle."""
    attached: list[tuple[int, int, float, float, float]] = []
    taken: set[tuple[int, int]] = set()
    for k, ((x, y), rout, l_src) in enumerate(draws):
        ix, iy = snap(pdn, x, y)
        if (ix, iy) in taken:
            continue
        taken.add((ix, iy))
        pdn.add_source(f"s{k}", x, y, 1.0, rout, l_src)
        attached.append((ix, iy, 1.0, rout, l_src))
    return attached


def assert_impedance_parity(
    pdn: GridACPDN,
    net: ACNetlist,
    freqs: np.ndarray,
    method: str,
    rtol: float = RTOL,
) -> None:
    """Grid impedance map vs a per-node scalar probe loop."""
    impedance = pdn.impedance_map(freqs, method=method)
    for k, frequency in enumerate(freqs):
        oracle = np.empty(pdn.nx * pdn.ny, dtype=complex)
        for iy in range(pdn.ny):
            for ix in range(pdn.nx):
                name = node_name(ix, iy)
                probe = probe_netlist(net, name)
                oracle[iy * pdn.nx + ix] = solve_ac(
                    probe, float(frequency)
                ).voltage(name)
        scale = max(float(np.abs(oracle).max()), 1e-12)
        delta = np.abs(impedance.z_ohm[:, k] - oracle)
        assert delta.max() <= rtol * scale, (
            f"{method} impedance map off by {delta.max():.3e} "
            f"(scale {scale:.3e}) at {frequency:.4g} Hz"
        )


@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=4),
    sheet=sheets,
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_direct_impedance_map_matches_scalar_oracle(nx, ny, sheet, data):
    """Arbitrary per-node decap/ESL maps: direct engine vs solve_ac."""
    cells = nx * ny
    c_flat = data.draw(
        st.lists(
            st.one_of(st.just(0.0), caps), min_size=cells, max_size=cells
        )
    )
    esr_flat = data.draw(st.lists(esrs, min_size=cells, max_size=cells))
    esl_flat = data.draw(st.lists(esls, min_size=cells, max_size=cells))
    source_draws = data.draw(
        st.lists(
            st.tuples(positions, routs, st.one_of(st.just(0.0), esls)),
            min_size=1,
            max_size=3,
        )
    )
    freqs = np.array(
        sorted(
            data.draw(
                st.lists(frequencies, min_size=1, max_size=3, unique=True)
            )
        )
    )

    pdn = GridACPDN(1e-2, 1e-2, sheet, nx=nx, ny=ny)
    c_map = np.array(c_flat).reshape(ny, nx)
    esr_map = np.array(esr_flat).reshape(ny, nx)
    esl_map = np.array(esl_flat).reshape(ny, nx)
    if not np.any(c_map > 0):
        c_map[0, 0] = 1e-7
    pdn.set_decap_map(c_map, esr_map, esl_map)
    sources = attach_sources(pdn, source_draws)
    net = lumped_equivalent(
        nx,
        ny,
        pdn.edge_resistance_x_ohm,
        pdn.edge_resistance_y_ohm,
        c_map,
        esr_map,
        esl_map,
        sources,
    )
    assert_impedance_parity(pdn, net, freqs, method="direct")


@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=4),
    sheet=sheets,
    unit_c=caps,
    unit_esr=esrs,
    unit_esl=esls,
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_spectral_impedance_map_matches_scalar_oracle(
    nx, ny, sheet, unit_c, unit_esr, unit_esl, data
):
    """Density-model decaps: the spectral engine vs solve_ac.

    The per-node maps the oracle sees are the folded parallel
    combination: α·C with ESR/α and ESL/α.
    """
    cells = nx * ny
    density = np.array(
        data.draw(st.lists(densities, min_size=cells, max_size=cells))
    ).reshape(ny, nx)
    source_draws = data.draw(
        st.lists(
            st.tuples(positions, routs, st.one_of(st.just(0.0), esls)),
            min_size=1,
            max_size=3,
        )
    )
    freqs = np.array(
        sorted(
            data.draw(
                st.lists(frequencies, min_size=1, max_size=3, unique=True)
            )
        )
    )

    pdn = GridACPDN(1e-2, 1e-2, sheet, nx=nx, ny=ny)
    pdn.set_decap_density(density, unit_c, unit_esr, unit_esl)
    sources = attach_sources(pdn, source_draws)
    net = lumped_equivalent(
        nx,
        ny,
        pdn.edge_resistance_x_ohm,
        pdn.edge_resistance_y_ohm,
        density * unit_c,
        unit_esr / density,
        unit_esl / density,
        sources,
    )
    assert_impedance_parity(pdn, net, freqs, method="spectral")
    # And the two engines against each other on the identical topology.
    direct = pdn.impedance_map(freqs, method="direct")
    spectral = pdn.impedance_map(freqs, method="spectral")
    scale = max(float(np.abs(direct.z_ohm).max()), 1e-12)
    assert np.abs(spectral.z_ohm - direct.z_ohm).max() <= RTOL * scale


@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=4),
    sheet=sheets,
    density=densities,
    unit_c=caps,
    unit_esr=esrs,
    unit_esl=esls,
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_structured_impedance_map_matches_scalar_oracle(
    nx, ny, sheet, density, unit_c, unit_esr, unit_esl, data
):
    """Uniform decap density: the structured (fast-Poisson) engine vs
    solve_ac, and against the spectral and direct engines on the
    identical topology."""
    source_draws = data.draw(
        st.lists(
            st.tuples(positions, routs, st.one_of(st.just(0.0), esls)),
            min_size=1,
            max_size=3,
        )
    )
    freqs = np.array(
        sorted(
            data.draw(
                st.lists(frequencies, min_size=1, max_size=3, unique=True)
            )
        )
    )

    pdn = GridACPDN(1e-2, 1e-2, sheet, nx=nx, ny=ny)
    pdn.set_decap_density(density, unit_c, unit_esr, unit_esl)
    sources = attach_sources(pdn, source_draws)
    assert pdn.impedance_engine() == "structured"
    alpha = np.full((ny, nx), density)
    net = lumped_equivalent(
        nx,
        ny,
        pdn.edge_resistance_x_ohm,
        pdn.edge_resistance_y_ohm,
        alpha * unit_c,
        unit_esr / alpha,
        unit_esl / alpha,
        sources,
    )
    assert_impedance_parity(
        pdn, net, freqs, method="structured", rtol=STRUCTURED_RTOL
    )
    structured = pdn.impedance_map(freqs, method="structured")
    for other in ("spectral", "direct"):
        z = pdn.impedance_map(freqs, method=other).z_ohm
        scale = max(float(np.abs(z).max()), 1e-12)
        assert (
            np.abs(structured.z_ohm - z).max() <= STRUCTURED_RTOL * scale
        ), f"structured vs {other} disagree"


@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=4),
    sheet=sheets,
    density=densities,
    unit_c=caps,
    unit_esr=esrs,
    ring=st.floats(min_value=1e-3, max_value=1e-1),
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_structured_ring_bus_matches_scalar_oracle(
    nx, ny, sheet, density, unit_c, unit_esr, ring, data
):
    """Ring-bus segments ride the rank-k correction of the structured
    engine; four corner VRs joined by a ring must match the hand-built
    oracle with explicit ring resistors."""
    freqs = np.array(
        sorted(
            data.draw(
                st.lists(frequencies, min_size=1, max_size=3, unique=True)
            )
        )
    )

    pdn = GridACPDN(1e-2, 1e-2, sheet, nx=nx, ny=ny)
    pdn.set_decap_density(density, unit_c, unit_esr)
    corners = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
    sources = []
    for k, (x, y) in enumerate(corners):
        rout = data.draw(routs)
        l_src = data.draw(st.one_of(st.just(0.0), esls))
        pdn.add_source(f"s{k}", x, y, 1.0, rout, l_src)
        ix, iy = snap(pdn, x, y)
        sources.append((ix, iy, 1.0, rout, l_src))
    pdn.connect_sources_with_ring_bus(ring)
    assert pdn.impedance_engine() == "structured"

    alpha = np.full((ny, nx), density)
    net = lumped_equivalent(
        nx,
        ny,
        pdn.edge_resistance_x_ohm,
        pdn.edge_resistance_y_ohm,
        alpha * unit_c,
        unit_esr / alpha,
        np.zeros((ny, nx)),
        sources,
        ring_ohm=ring,
    )
    assert_impedance_parity(
        pdn, net, freqs, method="structured", rtol=STRUCTURED_RTOL
    )
    direct = pdn.impedance_map(freqs, method="direct").z_ohm
    structured = pdn.impedance_map(freqs, method="structured").z_ohm
    scale = max(float(np.abs(direct).max()), 1e-12)
    assert np.abs(structured - direct).max() <= STRUCTURED_RTOL * scale


def test_impedance_engine_selection_by_topology():
    """Auto picks structured > spectral > direct by what the topology
    allows; explicit ineligible methods are configuration errors."""
    pdn = GridACPDN(1e-2, 1e-2, 1e-2, nx=3, ny=3)
    pdn.add_source("s0", 0.0, 0.0, 1.0, 1e-2)

    with pytest.raises(ConfigError):
        pdn.impedance_engine("bogus")
    # No decap attached: only the direct engine applies.
    assert pdn.impedance_engine() == "direct-dense"
    with pytest.raises(ConfigError):
        pdn.impedance_engine("structured")
    with pytest.raises(ConfigError):
        pdn.impedance_engine("spectral")

    # Uniform positive density: every engine, auto picks structured.
    pdn.set_decap_density(1.0, 1e-7, 1e-2, 1e-11)
    assert pdn.impedance_engine() == "structured"
    assert pdn.impedance_engine("structured") == "structured"
    assert pdn.impedance_engine("spectral") == "spectral"
    assert pdn.impedance_engine("direct") == "direct-dense"

    # Non-uniform positive density: spectral, structured is refused.
    density = np.ones((3, 3))
    density[1, 1] = 2.0
    pdn.set_decap_density(density, 1e-7)
    assert pdn.impedance_engine() == "spectral"
    with pytest.raises(ConfigError):
        pdn.impedance_engine("structured")

    # A zero in the density map kills both modal engines.
    density[0, 0] = 0.0
    pdn.set_decap_density(density, 1e-7)
    assert pdn.impedance_engine() == "direct-dense"
    with pytest.raises(ConfigError):
        pdn.impedance_engine("spectral")

    # Arbitrary per-node maps only run direct.
    pdn.set_decap_map(np.full((3, 3), 1e-7), 1e-2, 0.0)
    assert pdn.impedance_engine() == "direct-dense"
    with pytest.raises(ConfigError):
        pdn.impedance_engine("spectral")


def test_inductive_mesh_disables_modal_engines():
    """Series mesh inductance breaks the frequency-independent
    Laplacian both modal engines rely on."""
    pdn = GridACPDN(
        1e-2,
        1e-2,
        1e-2,
        nx=3,
        ny=3,
        edge_inductance_x_h=1e-12,
        edge_inductance_y_h=1e-12,
    )
    pdn.add_source("s0", 0.0, 0.0, 1.0, 1e-2)
    pdn.set_decap_density(1.0, 1e-7)
    assert pdn.impedance_engine() == "direct-dense"
    with pytest.raises(ConfigError):
        pdn.impedance_engine("structured")
    with pytest.raises(ConfigError):
        pdn.impedance_engine("spectral")


def test_direct_engine_crossover_by_mesh_size():
    """The direct engine is dense up to GRID_DENSE_CELL_CUTOFF cells
    and shared-pattern sparse above — asserted both on the helper and
    through the engine-resolution surface."""
    assert grid_direct_mode(GRID_DENSE_CELL_CUTOFF) == "dense"
    assert grid_direct_mode(GRID_DENSE_CELL_CUTOFF + 1) == "sparse"

    side = int(round(GRID_DENSE_CELL_CUTOFF**0.5))
    assert side * side == GRID_DENSE_CELL_CUTOFF, "cutoff must be square"
    at_cutoff = GridACPDN(1e-2, 1e-2, 1e-2, nx=side, ny=side)
    at_cutoff.add_source("s0", 0.0, 0.0, 1.0, 1e-2)
    assert at_cutoff.impedance_engine("direct") == "direct-dense"
    assert at_cutoff.impedance_engine() == "direct-dense"

    above = GridACPDN(1e-2, 1e-2, 1e-2, nx=side + 1, ny=side)
    above.add_source("s0", 0.0, 0.0, 1.0, 1e-2)
    assert above.impedance_engine("direct") == "direct-sparse"
    assert above.impedance_engine() == "direct-sparse"


def test_direct_sparse_agrees_with_structured_above_cutoff():
    """Above the dense cutoff, the shared-pattern sparse direct path
    must agree with the structured engine on a uniform-density mesh."""
    side = int(round(GRID_DENSE_CELL_CUTOFF**0.5))
    pdn = GridACPDN(1e-2, 1e-2, 1e-2, nx=side + 1, ny=side)
    pdn.add_source("s0", 0.0, 0.0, 1.0, 1e-2)
    pdn.add_source("s1", 1.0, 1.0, 1.0, 2e-2, 1e-11)
    pdn.set_decap_density(1.5, 1e-7, 5e-3, 1e-11)
    assert pdn.impedance_engine("direct") == "direct-sparse"
    freqs = np.array([1e5, 1e7, 1e9])
    direct = pdn.impedance_map(freqs, method="direct").z_ohm
    structured = pdn.impedance_map(freqs, method="structured").z_ohm
    scale = max(float(np.abs(direct).max()), 1e-12)
    assert np.abs(structured - direct).max() <= STRUCTURED_RTOL * scale


@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=3),
    sheet=sheets,
    unit_c=caps,
    unit_esr=esrs,
    edge_l=st.one_of(st.just(0.0), esls),
    data=st.data(),
)
@settings(max_examples=15, deadline=None)
def test_driven_sweep_matches_scalar_oracle(
    nx, ny, sheet, unit_c, unit_esr, edge_l, data
):
    """The compiled driven path (sources live, sinks as AC loads)
    reproduces solve_ac on the hand-built equivalent — including
    inductive mesh metal and every internal chain node."""
    cells = nx * ny
    sinks = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0),
                min_size=cells,
                max_size=cells,
            )
        )
    ).reshape(ny, nx)
    source_draws = data.draw(
        st.lists(
            st.tuples(positions, routs, st.one_of(st.just(0.0), esls)),
            min_size=1,
            max_size=2,
        )
    )
    freqs = np.array(
        sorted(
            data.draw(
                st.lists(frequencies, min_size=1, max_size=3, unique=True)
            )
        )
    )

    pdn = GridACPDN(
        1e-2,
        1e-2,
        sheet,
        nx=nx,
        ny=ny,
        edge_inductance_x_h=edge_l,
        edge_inductance_y_h=edge_l,
    )
    pdn.set_decap_map(np.full((ny, nx), unit_c), unit_esr, 0.0)
    pdn.set_sink_array(sinks)
    sources = attach_sources(pdn, source_draws)
    net = lumped_equivalent(
        nx,
        ny,
        pdn.edge_resistance_x_ohm,
        pdn.edge_resistance_y_ohm,
        np.full((ny, nx), unit_c),
        np.full((ny, nx), unit_esr),
        np.zeros((ny, nx)),
        sources,
        sinks=sinks,
        edge_lx=edge_l,
        edge_ly=edge_l,
    )

    solution = pdn.solve(freqs)
    maps = solution.voltage_maps
    for k, frequency in enumerate(freqs):
        reference = solve_ac(net, float(frequency))
        oracle = np.array(
            [
                reference.voltage(node_name(ix, iy))
                for iy in range(ny)
                for ix in range(nx)
            ]
        ).reshape(ny, nx)
        scale = max(float(np.abs(oracle).max()), 1e-12)
        delta = np.abs(maps[k] - oracle)
        assert delta.max() <= RTOL * scale, (
            f"driven sweep off by {delta.max():.3e} "
            f"(scale {scale:.3e}) at {frequency:.4g} Hz"
        )
