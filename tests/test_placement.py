"""Placement geometry, budgets, and planner tests."""

from __future__ import annotations

import math

import pytest

from repro.converters.catalog import (
    DPMIH,
    DSCH,
    THREE_LEVEL_HYBRID_DICKSON,
)
from repro.errors import ConfigError, InfeasibleError
from repro.placement.area_budget import (
    AreaBudget,
    below_die_budget,
    periphery_budget,
)
from repro.placement.geometry import (
    Position,
    grid_positions,
    mixed_positions,
    multi_ring_positions,
    periphery_positions,
    sunflower_positions,
)
from repro.placement.planner import (
    PlacementStyle,
    optimal_stage_count,
    plan_placement,
    required_count,
)

DIE_MM2 = 500.0


class TestPeripheryPositions:
    def test_count(self):
        assert len(periphery_positions(48)) == 48

    def test_all_on_boundary(self):
        for p in periphery_positions(24, inset=0.02):
            on_edge = (
                math.isclose(p.x, 0.02)
                or math.isclose(p.x, 0.98)
                or math.isclose(p.y, 0.02)
                or math.isclose(p.y, 0.98)
            )
            assert on_edge

    def test_positions_distinct(self):
        points = {(round(p.x, 6), round(p.y, 6)) for p in periphery_positions(48)}
        assert len(points) == 48

    def test_four_fold_symmetry_of_count(self):
        # 4k positions land k per side.
        positions = periphery_positions(8, inset=0.0)
        top = [p for p in positions if p.y == 0.0]
        assert len(top) == 2

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigError):
            periphery_positions(0)

    def test_rejects_bad_inset(self):
        with pytest.raises(ConfigError):
            periphery_positions(4, inset=0.5)


class TestMultiRing:
    def test_total_count(self):
        positions = multi_ring_positions([8, 4])
        assert len(positions) == 12

    def test_ring_indices(self):
        positions = multi_ring_positions([8, 4])
        assert {p.ring for p in positions} == {0, 1}

    def test_deeper_ring_more_inset(self):
        positions = multi_ring_positions([4, 4])
        ring0 = [p for p in positions if p.ring == 0]
        ring1 = [p for p in positions if p.ring == 1]
        min0 = min(min(p.x, p.y, 1 - p.x, 1 - p.y) for p in ring0)
        min1 = min(min(p.x, p.y, 1 - p.x, 1 - p.y) for p in ring1)
        assert min1 > min0

    def test_rejects_too_many_rings(self):
        with pytest.raises(ConfigError):
            multi_ring_positions([4] * 10, ring_spacing=0.08)

    def test_skips_empty_rings(self):
        positions = multi_ring_positions([4, 0, 4])
        assert len(positions) == 8


class TestGridPositions:
    def test_count(self):
        assert len(grid_positions(48)) == 48

    def test_perfect_square(self):
        positions = grid_positions(49)
        xs = sorted({round(p.x, 6) for p in positions})
        assert len(xs) == 7

    def test_positions_inside_margin(self):
        for p in grid_positions(48, margin=0.1):
            assert 0.1 <= p.x <= 0.9
            assert 0.1 <= p.y <= 0.9

    def test_single(self):
        positions = grid_positions(1)
        assert positions[0].x == pytest.approx(0.5)

    def test_distinct(self):
        points = {(round(p.x, 6), round(p.y, 6)) for p in grid_positions(48)}
        assert len(points) == 48


class TestSunflower:
    def test_count(self):
        assert len(sunflower_positions(48)) == 48

    def test_inside_disk(self):
        for p in sunflower_positions(100, radius=0.4):
            assert math.hypot(p.x - 0.5, p.y - 0.5) <= 0.4 + 1e-9

    def test_rejects_big_radius(self):
        with pytest.raises(ConfigError):
            sunflower_positions(10, radius=0.6)


class TestMixedPositions:
    def test_counts(self):
        positions = mixed_positions(7, 5)
        assert len(positions) == 12
        assert sum(1 for p in positions if p.ring == 1) == 5

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            mixed_positions(0, 0)


class TestBudgets:
    def test_periphery_budget_area(self):
        budget = periphery_budget(500.0, 1200.0, usable_fraction=0.95)
        assert budget.available_mm2 == pytest.approx(665.0)

    def test_below_die_budget_area(self):
        budget = below_die_budget(500.0)
        assert budget.available_mm2 == pytest.approx(375.0)

    def test_capacity(self):
        budget = AreaBudget("x", 100.0)
        assert budget.capacity(7.25) == 13

    def test_fits(self):
        budget = AreaBudget("x", 100.0)
        assert budget.fits(13, 7.25)
        assert not budget.fits(14, 7.25)

    def test_used_fraction(self):
        budget = AreaBudget("x", 100.0)
        assert budget.used_fraction(10, 5.0) == pytest.approx(0.5)

    def test_rejects_interposer_smaller_than_die(self):
        with pytest.raises(ConfigError):
            periphery_budget(1300.0, 1200.0)

    def test_dpmih_seven_fit_below_die(self):
        # The Table II "7 VRs below the die" for DPMIH is exactly the
        # 75% die-shadow budget capacity.
        budget = below_die_budget(DIE_MM2)
        assert budget.capacity(DPMIH.area_mm2) == 7

    def test_dsch_48_fit_below_die(self):
        budget = below_die_budget(DIE_MM2)
        assert budget.capacity(DSCH.area_mm2) >= 48


class TestRequiredCount:
    def test_dsch_needs_34_for_1kA(self):
        assert required_count(DSCH, 1000.0) == 34

    def test_dpmih_needs_10_for_1kA(self):
        assert required_count(DPMIH, 1000.0) == 10

    def test_3lhd_needs_84(self):
        assert required_count(THREE_LEVEL_HYBRID_DICKSON, 1000.0) == 84


class TestPlanner:
    def test_dsch_periphery_uses_48_slots(self):
        plan = plan_placement(DSCH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
        assert plan.vr_count == 48
        assert plan.overflow_count == 0
        assert plan.per_vr_current_a == pytest.approx(1000 / 48)

    def test_dsch_below_die_uses_48_slots(self):
        plan = plan_placement(DSCH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2)
        assert plan.vr_count == 48
        assert plan.below_die_count == 48

    def test_dpmih_periphery_extends_rows(self):
        # 8 slots cannot carry 1 kA (125 A > 100 A): extra rows appear.
        plan = plan_placement(DPMIH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
        assert plan.vr_count == 12
        assert plan.is_multi_row
        assert plan.per_vr_current_a <= DPMIH.max_load_a

    def test_dpmih_below_die_overflows_to_periphery(self):
        # 7 below-die slots + overflow ring = the 10-93 A pattern.
        plan = plan_placement(DPMIH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2)
        assert plan.vr_count == 12
        assert plan.below_die_count == 7
        assert plan.overflow_count == 5

    def test_3lhd_slot_bound_excluded(self):
        # Dense converters cannot extend: the paper's 3LHD exclusion.
        with pytest.raises(InfeasibleError):
            plan_placement(
                THREE_LEVEL_HYBRID_DICKSON,
                PlacementStyle.PERIPHERY,
                1000.0,
                DIE_MM2,
            )

    def test_3lhd_excluded_below_die_too(self):
        with pytest.raises(InfeasibleError):
            plan_placement(
                THREE_LEVEL_HYBRID_DICKSON,
                PlacementStyle.BELOW_DIE,
                1000.0,
                DIE_MM2,
            )

    def test_3lhd_feasible_at_small_system(self):
        # At 500 A, 48 slots x 12 A = 576 A suffices.
        plan = plan_placement(
            THREE_LEVEL_HYBRID_DICKSON,
            PlacementStyle.PERIPHERY,
            500.0,
            DIE_MM2,
        )
        assert plan.vr_count == 48

    def test_positions_match_count(self):
        plan = plan_placement(DPMIH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2)
        assert len(plan.positions) == plan.vr_count

    def test_area_accounting(self):
        plan = plan_placement(DSCH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
        assert plan.area_used_mm2 == pytest.approx(48 * DSCH.area_mm2)

    def test_feasibility_guard_on_result(self):
        plan = plan_placement(DPMIH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2)
        assert plan.per_vr_current_a <= DPMIH.max_load_a * (1 + 1e-9)

    def test_rejects_zero_current(self):
        with pytest.raises(ConfigError):
            plan_placement(DSCH, PlacementStyle.PERIPHERY, 0.0, DIE_MM2)


class TestOptimalStageCount:
    def test_runs_each_vr_near_peak(self):
        model = DPMIH.loss_model
        count = optimal_stage_count(model, 94.0)
        per_vr = 94.0 / count
        # continuous optimum is I*sqrt(c/a) i.e. per-VR = i_peak = 30 A.
        assert per_vr == pytest.approx(30.0, rel=0.35)

    def test_minimum_is_floor_count(self):
        model = DPMIH.loss_model
        assert optimal_stage_count(model, 150.0) >= 2

    def test_obeys_max_count(self):
        model = DPMIH.loss_model
        count = optimal_stage_count(model, 900.0, max_count=12)
        assert count <= 12

    def test_max_count_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            optimal_stage_count(DPMIH.loss_model, 900.0, max_count=2)

    def test_count_is_loss_optimal_among_neighbours(self):
        model = DPMIH.loss_model
        current = 200.0
        best = optimal_stage_count(model, current)

        def loss(n: int) -> float:
            return n * model.loss_w(current / n)

        for neighbour in (best - 1, best + 1):
            if neighbour >= math.ceil(current / model.i_max_a):
                assert loss(best) <= loss(neighbour) + 1e-9


class TestPosition:
    def test_rejects_outside(self):
        with pytest.raises(ConfigError):
            Position(x=1.2, y=0.5)
