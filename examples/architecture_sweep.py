#!/usr/bin/env python3
"""Design-space exploration: beyond the paper's five design points.

Sweeps (1) the conversion location, (2) the A3 intermediate rail
voltage, (3) the system power level, and (4) the stage-converter
modeling policy — showing where the paper's conclusions hold and
where they flip.

Run:  python examples/architecture_sweep.py
"""

from __future__ import annotations

import math

from repro import (
    DSCH,
    InfeasibleError,
    LossAnalyzer,
    SystemSpec,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.exploration import (
    conversion_location_sweep,
    intermediate_voltage_sweep,
    stage_mode_comparison,
)
from repro.reporting.ascii_plot import bar_chart


def sweep_conversion_location() -> None:
    print("== where should the 48V-to-1V conversion happen? ==")
    points = conversion_location_sweep()
    print(
        bar_chart(
            [p.label for p in points],
            [p.loss_pct for p in points],
            unit="%",
        )
    )
    print()


def sweep_intermediate_voltage() -> None:
    print("== A3: choosing the intermediate rail ==")
    points = intermediate_voltage_sweep(
        voltages=(3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0)
    )
    feasible = [p for p in points if not math.isnan(p.total_loss_w)]
    best = min(feasible, key=lambda p: p.total_loss_w)
    for p in feasible:
        marker = "  <- optimum" if p is best else ""
        print(f"  V_int {p.value:5.1f} V: loss {p.loss_pct:6.2f}%{marker}")
    print(
        "  low rails pay I^2R in the rail; the sweet spot balances the "
        "rail current against stage-1 stress."
    )
    print()


def sweep_power_level() -> None:
    print("== scaling the system power (A1 and A2 with DSCH) ==")
    print(f"  {'power':>8s} {'A1 loss%':>9s} {'A2 loss%':>9s} {'die mm2':>8s}")
    for power in (250.0, 500.0, 1000.0, 1500.0):
        spec = SystemSpec().with_power(power)
        analyzer = LossAnalyzer(spec)
        try:
            a1 = analyzer.analyze(single_stage_a1(), DSCH)
            a2 = analyzer.analyze(single_stage_a2(), DSCH)
        except InfeasibleError as exc:
            # Above ~1.4 kA the 48 DSCH slots run out of rating — the
            # slot-bound limit the paper hits with 3LHD at 1 kA.
            print(f"  {power:7.0f}W  infeasible: {str(exc)[:58]}")
            continue
        print(
            f"  {power:7.0f}W {100 * a1.paper_loss_fraction:8.2f}% "
            f"{100 * a2.paper_loss_fraction:8.2f}% {spec.die_area_mm2:8.0f}"
        )
    print()


def compare_stage_models() -> None:
    print("== dual-stage verdict depends on the stage-converter model ==")
    results = stage_mode_comparison()
    for label, breakdown in results.items():
        print(
            f"  {label:18s}: efficiency {breakdown.efficiency:.1%} "
            f"(loss {100 * breakdown.paper_loss_fraction:.1f}%)"
        )
    print(
        "  reusing published 48V-to-1V data (the paper's only option) "
        "ranks A3 below A1; ratio-optimized stages flip the ordering."
    )
    print()


def main() -> None:
    sweep_conversion_location()
    sweep_intermediate_voltage()
    sweep_power_level()
    compare_stage_models()


if __name__ == "__main__":
    main()
