#!/usr/bin/env python3
"""Adopting the library for a system the paper never studied.

A downstream team has a 600 W network switch ASIC at 0.85 V with a
54 V bus, a thicker custom RDL, and a vendor converter that is not in
the paper's catalog.  This example shows the extension points:

1. a custom :class:`SystemSpec`,
2. a custom packaging stack (heavier interposer copper),
3. a custom converter spec fitted from the vendor's datasheet points,
4. the standard analyses running unchanged on top.

Run:  python examples/custom_system.py
"""

from __future__ import annotations

from repro import (
    LossAnalyzer,
    QuadraticLossModel,
    SystemSpec,
    single_stage_a2,
)
from repro.converters.catalog import ConverterSpec
from repro.core.current_sharing import analyze_current_sharing
from repro.pdn.stackup import (
    LateralMetal,
    PackagingLevel,
    PackagingStack,
    default_stack,
)
from repro.units import um


def build_custom_spec() -> SystemSpec:
    """600 W at 0.85 V from a 54 V bus, 1.5 A/mm2."""
    return SystemSpec(
        pol_power_w=600.0,
        pol_voltage_v=0.85,
        input_voltage_v=54.0,
        current_density_a_per_mm2=1.5,
    )


def build_custom_stack(spec: SystemSpec) -> PackagingStack:
    """The team's interposer plates 54 um of RDL copper (2x paper)."""
    base = default_stack(spec)
    levels = list(base.levels)
    interposer = levels[2]
    levels[2] = PackagingLevel(
        name=interposer.name,
        lateral=LateralMetal(name="thick RDL", thickness_m=um(54.0)),
        down_interface=interposer.down_interface,
    )
    return PackagingStack(levels=tuple(levels), spec=spec)


def build_vendor_converter() -> ConverterSpec:
    """A vendor 54V-to-0.85V hybrid: datasheet says 93% peak at 15 A,
    40 A max at 90.5%, 6 switches at 0.5/mm2, in 40 VR sites."""
    model = QuadraticLossModel.fit(
        v_out_v=0.85,
        i_peak_a=15.0,
        eta_peak=0.93,
        i_max_a=40.0,
        eta_max=0.905,
    )
    return ConverterSpec(
        name="VendorX",
        full_name="Vendor X 54V hybrid",
        conversion_scheme="54V-to-0.85V",
        max_load_a=40.0,
        peak_efficiency=0.93,
        i_at_peak_a=15.0,
        switch_count=6,
        switches_per_mm2=0.5,
        inductor_count=2,
        total_inductance_h=1.2e-6,
        capacitor_count=3,
        total_capacitance_f=8e-6,
        vrs_along_periphery=40,
        vrs_below_die=40,
        loss_model=model,
    )


def main() -> None:
    spec = build_custom_spec()
    stack = build_custom_stack(spec)
    converter = build_vendor_converter()
    arch = single_stage_a2()

    print(
        f"system: {spec.pol_power_w:.0f} W at {spec.pol_voltage_v} V "
        f"({spec.pol_current_a:.0f} A), {spec.input_voltage_v:.0f} V bus, "
        f"{spec.die_area_mm2:.0f} mm2 die\n"
    )

    analyzer = LossAnalyzer(spec=spec, stack=stack)
    breakdown = analyzer.analyze(arch, converter)
    print(f"== {arch.name} with {converter.name} ==")
    for component in breakdown.components:
        print(
            f"  {component.name:18s} {component.loss_w:7.2f} W  "
            f"{component.detail}"
        )
    print(
        f"  total: {breakdown.total_loss_w:.1f} W "
        f"({breakdown.paper_loss_fraction:.1%} of nominal), "
        f"efficiency {breakdown.efficiency:.1%}\n"
    )

    sharing = analyze_current_sharing(arch, converter, spec=spec)
    print(
        f"per-VR sharing: {sharing.min_current_a:.1f} .. "
        f"{sharing.max_current_a:.1f} A across {sharing.plan.vr_count} VRs "
        f"({sharing.overloaded_count} above the vendor's 40 A rating)"
    )
    print(
        "\nthe whole analysis stack (loss, sharing, utilization, "
        "optimization) runs on custom specs, stacks, and converters."
    )


if __name__ == "__main__":
    main()
