#!/usr/bin/env python3
"""Converter design space: why the paper picks hybrid GaN topologies.

Walks the Section III argument bottom-up with the physics models:

1. a plain 48V-to-1V buck is on-time limited (~2% duty caps the
   frequency, which forces bulky inductors);
2. a switched-capacitor front relaxes the duty (DSCH: /3, 3LHD: /10);
3. GaN devices keep switching loss acceptable at the frequencies
   integrated passives need;
4. the published hybrid converters (Table II) cover different
   current/area corners - efficiency curves plotted from the
   calibrated models.

Run:  python examples/converter_design_space.py
"""

from __future__ import annotations

from repro.converters.catalog import CATALOG
from repro.converters.devices import Capacitor, Inductor, PowerSwitch
from repro.converters.topologies.buck import SynchronousBuck
from repro.converters.topologies.dickson3l import ThreeLevelHybridDickson
from repro.converters.topologies.dsch import DSCHConverter
from repro.core.exploration import si_vs_gan_buck
from repro.errors import InfeasibleError
from repro.reporting.ascii_plot import series_table


def on_time_argument() -> None:
    print("== 1. the high-ratio buck's on-time problem ==")
    buck = SynchronousBuck(
        v_in_v=48.0,
        v_out_v=1.0,
        frequency_hz=0.5e6,
        inductor=Inductor(2.2e-6, 0.5e-3, 60.0),
        output_capacitor=Capacitor(100e-6, 0.2e-3),
        high_side=PowerSwitch.sized_for(4e-3),
        low_side=PowerSwitch.sized_for(1.5e-3),
    )
    print(f"  48V-to-1V duty           : {buck.duty:.2%}")
    print(f"  on-time at 0.5 MHz       : {buck.on_time_s * 1e9:.0f} ns")
    print(
        f"  max frequency (20 ns min): {buck.max_frequency_hz / 1e6:.2f} MHz"
    )
    dsch = DSCHConverter()
    dickson = ThreeLevelHybridDickson()
    print(f"  DSCH effective duty      : {dsch.buck_duty:.1%} (SC /3 front)")
    print(
        f"  3LHD effective on-time   : "
        f"{dickson.effective_on_time_fraction:.1%} (Dickson /10 front)"
    )
    print()


def gan_argument() -> None:
    print("== 2. Si vs GaN over switching frequency (12V-to-1V buck) ==")
    rows = []
    by_freq: dict[float, dict[str, float]] = {}
    for point in si_vs_gan_buck():
        if point.feasible:
            by_freq.setdefault(point.frequency_hz, {})[point.technology] = (
                point.efficiency
            )
    for freq in sorted(by_freq):
        eta = by_freq[freq]
        rows.append(
            [
                f"{freq / 1e6:.1f} MHz",
                f"{eta['Si']:.1%}",
                f"{eta['GaN']:.1%}",
                f"{(eta['GaN'] - eta['Si']) * 100:.1f} pts",
            ]
        )
    print(series_table(["frequency", "Si", "GaN", "GaN advantage"], rows))
    print()


def hybrid_landscape() -> None:
    print("== 3. the published hybrid converters (calibrated curves) ==")
    currents = [1.0, 3.0, 10.0, 20.0, 30.0, 60.0, 100.0]
    rows = []
    for current in currents:
        row: list[object] = [f"{current:.0f} A"]
        for spec in CATALOG:
            try:
                eta = spec.loss_model.efficiency(current)
                row.append(f"{eta:.1%}")
            except InfeasibleError:
                row.append("-")
        rows.append(row)
    print(series_table(["load", "DPMIH", "DSCH", "3LHD"], rows))
    print()
    for spec in CATALOG:
        print(
            f"  {spec.name:6s}: up to {spec.max_load_a:.0f} A, "
            f"{spec.area_mm2:.1f} mm2/VR, "
            f"{spec.inductor_count} inductors "
            f"({spec.total_inductance_h * 1e6:.2f} uH total)"
        )
    print()
    print(
        "  DPMIH carries the most current but needs 7x the area; DSCH is "
        "the compact mid-range choice; 3LHD tops out at 12 A - which is "
        "exactly why the paper drops it from the 1 kA study."
    )


def main() -> None:
    on_time_argument()
    gan_argument()
    hybrid_landscape()


if __name__ == "__main__":
    main()
