#!/usr/bin/env python3
"""Load-step droop: the dynamic case for vertical power delivery.

The paper argues DC loss; this extension shows the same architecture
choice also governs the transient response.  A board-regulated PDN
(A0-style) leaves ~10 nH of board/package inductance between the
regulator and the die; an interposer-regulated PDN (A1/A2-style)
hides it behind the regulator.  We step the die current and compare
the droops.

Run:  python examples/transient_droop.py
"""

from __future__ import annotations

import numpy as np

from repro.pdn.transient import (
    default_board_regulated_pdn,
    default_interposer_regulated_pdn,
)


def ascii_waveform(time_s, volts, width: int = 64, height: int = 12) -> str:
    """Tiny inline waveform rendering."""
    t = np.asarray(time_s)
    v = np.asarray(volts)
    columns = np.linspace(0, len(t) - 1, width).astype(int)
    samples = v[columns]
    lo, hi = samples.min(), samples.max()
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(samples):
        row = height - 1 - int((value - lo) / span * (height - 1))
        grid[row][col] = "*"
    lines = ["|" + "".join(row) + "|" for row in grid]
    lines.append(f"min {lo * 1e3:.1f} mV-below-1V ... max {hi:.4f} V, "
                 f"{t[-1] * 1e6:.0f} us span")
    return "\n".join(lines)


def main() -> None:
    step_from, step_to = 5.0, 50.0
    print(f"die load step: {step_from:.0f} A -> {step_to:.0f} A\n")

    scenarios = [
        ("A0-style (regulator on the board)", default_board_regulated_pdn()),
        (
            "A1/A2-style (regulator on the interposer)",
            default_interposer_regulated_pdn(),
        ),
    ]
    results = []
    for label, pdn in scenarios:
        result = pdn.simulate_step(step_from, step_to, duration_s=30e-6)
        results.append((label, result))
        print(f"== {label} ==")
        print(ascii_waveform(result.time_s, result.pol_voltage_v))
        print(
            f"droop {result.droop_v * 1e3:.1f} mV, settle "
            f"{result.settle_time_s * 1e6:.1f} us\n"
        )

    (_, board), (_, interposer) = results
    improvement = board.droop_v / interposer.droop_v
    print(
        f"interposer regulation cuts the first droop by {improvement:.1f}x "
        "- the transient companion to the paper's DC savings."
    )


if __name__ == "__main__":
    main()
