#!/usr/bin/env python3
"""Power-integrity sign-off of a vertical power delivery design.

A loss number is not a sign-off.  This example runs the checks a
power-integrity engineer would actually sign against for the A2+DSCH
design the optimizer recommends:

1. DC IR-drop: every die node inside the droop budget,
2. AC impedance: Z(f) under the target impedance,
3. electro-thermal: losses at temperature, not at 25 C,
4. Monte-Carlo: yield against an efficiency floor under tolerances.

Run:  python examples/power_integrity_signoff.py
"""

from __future__ import annotations

import numpy as np

from repro import DSCH, single_stage_a2
from repro.core.electro_thermal import electro_thermal_loss
from repro.core.ir_drop import analyze_ir_drop
from repro.core.variation import monte_carlo_loss
from repro.pdn.impedance import pdn_impedance, target_impedance_ohm
from repro.pdn.transient import PDNStage


def check(label: str, passed: bool, detail: str) -> bool:
    print(f"  [{'PASS' if passed else 'FAIL'}] {label}: {detail}")
    return passed


def main() -> None:
    arch, topo = single_stage_a2(), DSCH
    print(f"signing off: {arch.name} with {topo.name} (1 kW, 1 V, 2 A/mm2)\n")
    all_ok = True

    print("1. DC IR-drop")
    ir = analyze_ir_drop(arch, topo)
    all_ok &= check(
        "worst-case droop",
        ir.within_budget,
        f"{ir.worst_droop_v * 1e3:.1f} mV of the "
        f"{ir.droop_budget_v * 1e3:.0f} mV budget, worst node at "
        f"({ir.worst_node[0]:.2f}, {ir.worst_node[1]:.2f})",
    )
    print()

    print("2. AC target impedance (100 A local step, 5% ripple)")
    target = target_impedance_ohm(1.0, 0.05, 100.0)
    freqs = np.logspace(3, 7.2, 200)
    # First pass: conservative decoupling (discrete caps, long loop).
    draft = [
        PDNStage("interposer", 0.05e-3, 50e-12, 100e-6, 0.1e-3),
        PDNStage("die", 0.02e-3, 20e-12, 100e-6, 0.05e-3),
    ]
    profile = pdn_impedance(draft, frequencies_hz=freqs)
    band = profile.violation_band_hz(target)
    check(
        "draft decoupling",
        profile.meets_target(target),
        f"peak {profile.peak_impedance_ohm * 1e3:.3f} mOhm vs target "
        f"{target * 1e3:.3f} mOhm"
        + (
            f", violates {band[0] / 1e6:.2f}-{band[1] / 1e6:.1f} MHz"
            if band
            else ""
        ),
    )
    # The fix is exactly what A2 buys physically: VRs sit under the
    # die (10 pH loop through the Cu-Cu pads) and the interposer
    # carries deep-trench capacitance (~1 mF).
    fixed = [
        PDNStage("interposer", 0.05e-3, 10e-12, 200e-6, 0.2e-3),
        PDNStage("die", 0.02e-3, 5e-12, 1000e-6, 0.1e-3),
    ]
    profile = pdn_impedance(fixed, frequencies_hz=freqs)
    all_ok &= check(
        "with under-die VRs + deep-trench caps",
        profile.meets_target(target),
        f"peak {profile.peak_impedance_ohm * 1e3:.3f} mOhm at "
        f"{profile.peak_frequency_hz / 1e6:.1f} MHz",
    )
    print()

    print("3. electro-thermal operating point (Tj max 125 C)")
    thermal = electro_thermal_loss(arch, topo)
    all_ok &= check(
        "die temperature",
        thermal.temperatures.die_c < 125.0,
        f"{thermal.temperatures.die_c:.0f} C die / "
        f"{thermal.temperatures.interposer_c:.0f} C interposer; loss "
        f"{thermal.breakdown_25c.total_loss_w:.0f} W -> "
        f"{thermal.total_loss_w:.0f} W at temperature",
    )
    print()

    print("4. tolerance yield (n=200, 5% converter / 8% RDL sigma)")
    mc = monte_carlo_loss(arch, topo, samples=200)
    yld = mc.yield_at_efficiency(0.87, 1000.0)
    all_ok &= check(
        "yield at eta >= 87%",
        yld >= 0.95,
        f"{yld:.1%} (p95 loss {mc.percentile_w(95):.0f} W vs nominal "
        f"{mc.nominal_loss_w:.0f} W)",
    )
    print()

    print("SIGN-OFF " + ("GRANTED" if all_ok else "WITHHELD"))


if __name__ == "__main__":
    main()
