#!/usr/bin/env python3
"""The paper's headline study: characterize every architecture.

Reproduces the full Fig. 7 experiment — A0 vs A1/A2/A3@12V/A3@6V with
the DPMIH, DSCH and 3LHD converter topologies — for a 1 kW AI
accelerator at 2 A/mm2, then prints the utilization story (how little
of the vertical interconnect the 48 V feed needs) and the per-VR
current-sharing observation.

Run:  python examples/accelerator_1kw_study.py
"""

from __future__ import annotations

from repro import (
    DSCH,
    SystemSpec,
    analyze_current_sharing,
    a0_die_area_requirement,
    characterize_all,
    fig7_claims,
    single_stage_a1,
    single_stage_a2,
    vertical_utilization,
)
from repro.reporting.figures import render_fig7


def main() -> None:
    spec = SystemSpec()

    print("== Fig. 7: PCB-to-POL loss study ==")
    rows = characterize_all(spec=spec)
    print(render_fig7(rows=rows))
    print()

    claims = fig7_claims(rows)
    print(f"A0 loses {claims.a0_loss_pct:.1f}% of the nominal kilowatt "
          "(paper: over 40%).")
    print(
        "the best vertical architecture loses only "
        f"{claims.best_vertical_loss_pct:.1f}% (paper: ~20% for most)."
    )
    print(
        f"A3 cuts horizontal loss {claims.horizontal_reduction_a3_12v:.0f}x "
        f"at 12 V and {claims.horizontal_reduction_a3_6v:.0f}x at 6 V vs A0."
    )
    print()

    print("== interconnect utilization (A2, 48 V feed) ==")
    report = vertical_utilization(single_stage_a2(), spec=spec)
    for row in report.rows:
        print(
            f"  {row.technology:18s}: {row.utilization:6.2%} of sites "
            f"({row.elements_per_polarity} per polarity at "
            f"{row.rated_current_a * 1e3:.0f} mA each)"
        )
    a0_limit = a0_die_area_requirement(spec=spec)
    print(
        f"  A0 by contrast needs a {a0_limit.required_die_area_mm2:.0f} mm2 "
        f"die ({a0_limit.power_density_limit_a_per_mm2:.2f} A/mm2 cap)."
    )
    print()

    print("== per-VR current sharing (DSCH, 48 VRs) ==")
    for arch in (single_stage_a1(), single_stage_a2()):
        sharing = analyze_current_sharing(arch, DSCH, spec=spec)
        print(
            f"  {sharing.architecture}: {sharing.min_current_a:.0f} to "
            f"{sharing.max_current_a:.0f} A per VR "
            f"(mean {sharing.mean_current_a:.0f} A, "
            f"{sharing.overloaded_count} VRs beyond the 30 A rating)"
        )
    print()
    print("paper: A1 shares 16-27 A; A2 spans 10-93 A because the "
          "under-die VRs beneath the hotspot pick up the local demand.")


if __name__ == "__main__":
    main()
