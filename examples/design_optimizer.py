#!/usr/bin/env python3
"""Pick the right power delivery architecture for *your* system.

The paper characterizes one system (1 kW / 2 A/mm2).  A downstream
user has a different chip: this example runs the optimizer across a
range of system powers and constraint sets, showing how the best
architecture shifts — 3LHD becomes viable for small systems, DPMIH
survives area pressure, A0 only ever wins when nothing else is
allowed.

Run:  python examples/design_optimizer.py
"""

from __future__ import annotations

from repro import SystemSpec
from repro.core.optimizer import DesignConstraints, optimize_design
from repro.errors import InfeasibleError


def frontier_for(power_w: float) -> None:
    spec = SystemSpec().with_power(power_w)
    result = optimize_design(spec=spec)
    best = result.best
    runner_up = result.feasible[1] if len(result.feasible) > 1 else None
    line = (
        f"  {power_w:6.0f} W: best {best.architecture}+{best.topology} "
        f"({best.efficiency:.1%})"
    )
    if runner_up:
        line += (
            f", then {runner_up.architecture}+{runner_up.topology} "
            f"({runner_up.efficiency:.1%})"
        )
    feasible_3lhd = any(
        c.topology == "3LHD" for c in result.feasible
    )
    line += f"; 3LHD {'viable' if feasible_3lhd else 'excluded'}"
    print(line)


def constrained_studies() -> None:
    cases = [
        (
            "control caps VRs at 16",
            DesignConstraints(max_vr_count=16),
        ),
        (
            "interposer area capped at 300 mm2",
            DesignConstraints(max_converter_area_mm2=300.0),
        ),
        (
            "no board conversion allowed",
            DesignConstraints(allow_pcb_conversion=False),
        ),
        (
            "wide rail search (4..20 V)",
            DesignConstraints(
                intermediate_rails_v=(4.0, 8.0, 12.0, 16.0, 20.0)
            ),
        ),
    ]
    for label, constraints in cases:
        try:
            result = optimize_design(constraints=constraints)
            best = result.best
            print(
                f"  {label:36s} -> {best.architecture}+{best.topology} "
                f"({best.efficiency:.1%}, "
                f"{len(result.rejected)} rejected)"
            )
        except InfeasibleError as exc:
            print(f"  {label:36s} -> no feasible design ({exc})")


def main() -> None:
    print("== architecture frontier vs system power ==")
    for power in (200.0, 400.0, 700.0, 1000.0, 1300.0):
        frontier_for(power)
    print()
    print("== constrained searches (1 kW system) ==")
    constrained_studies()


if __name__ == "__main__":
    main()
