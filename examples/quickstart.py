#!/usr/bin/env python3
"""Quickstart: analyze one vertical power delivery design point.

Builds the paper's 1 kW / 1 V / 48 V system, places DSCH regulators
along the interposer periphery (architecture A1), and prints the
PCB-to-POL loss breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DSCH, LossAnalyzer, SystemSpec, reference_a0, single_stage_a1


def main() -> None:
    # The paper's study system: 1 kW at 1 V (1 kA), 48 V at the PCB,
    # 2 A/mm2 current density -> a 500 mm2 die.
    spec = SystemSpec()
    print(f"system: {spec.pol_power_w:.0f} W at {spec.pol_voltage_v:.0f} V, "
          f"{spec.input_voltage_v:.0f} V input, "
          f"{spec.die_area_mm2:.0f} mm2 die")
    print()

    analyzer = LossAnalyzer(spec)

    # The traditional reference: 48V-to-1V conversion at the PCB.
    a0 = analyzer.analyze(reference_a0(), DSCH)
    # The proposed A1: single-stage conversion on the interposer,
    # DSCH regulators along the die periphery.
    a1 = analyzer.analyze(single_stage_a1(), DSCH)

    for breakdown in (a0, a1):
        print(f"--- {breakdown.architecture} ({breakdown.topology}) ---")
        for component in breakdown.components:
            print(
                f"  {component.name:18s} {component.category:10s} "
                f"{component.loss_w:8.2f} W   {component.detail}"
            )
        print(
            f"  total loss: {breakdown.total_loss_w:.1f} W "
            f"({breakdown.paper_loss_fraction:.1%} of nominal) | "
            f"efficiency {breakdown.efficiency:.1%}"
        )
        print()

    saved = a0.total_loss_w - a1.total_loss_w
    print(
        f"moving conversion from the PCB onto the interposer saves "
        f"{saved:.0f} W ({saved / spec.pol_power_w:.0%} of the load power)."
    )


if __name__ == "__main__":
    main()
